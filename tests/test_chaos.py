"""Chaos-engineering headline tests (ISSUE 6).

The two claims the fault layer stands on, asserted end-to-end:

* **Self-healing convergence** — hier federations whose edges are killed at
  seeded-random event counts (async) or crash mid-round (sync) recover and
  keep training; rounds finalize with the surviving cohort.
* **Bitwise recovery** — under identity codecs, crash+recover runs whose
  kills land at safe boundaries (wave flush for the async runner, the
  round-start checkpoint for the sync one) are bit-for-bit the crash-free
  runs, IIADMM dual replicas included.

The full two-check scenario lives in :mod:`repro.harness.chaos`; these tests
run it at CI scale plus targeted runner-level cases the harness doesn't
isolate (sync replay, round-based boundary kills, backpressure).
"""

import numpy as np
import pytest

from repro.core import FLConfig, MLP
from repro.data import TensorDataset, iid_partition
from repro.faults import FaultPlan
from repro.harness import ChaosSettings, histories_bitwise_equal, run_chaos
from repro.hier import RootFedBuff, build_hier_async_federation, build_hier_federation


# ----------------------------------------------------------------- fixtures
def make_clients_and_test(num_clients=8, seed=0):
    rng = np.random.default_rng(seed + 555)
    centers = rng.standard_normal((3, 8)) * 3.0

    def make(n, s):
        r = np.random.default_rng(s)
        y = r.integers(0, 3, n)
        return TensorDataset(centers[y] + r.standard_normal((n, 8)), y)

    train = make(240, seed)
    test = make(60, seed + 100)
    clients = iid_partition(train, num_clients, rng=np.random.default_rng(seed))
    return clients, test


def model_fn():
    return MLP(8, 3, hidden_sizes=(12,), rng=np.random.default_rng(7))


def base_config(algorithm, **kwargs):
    defaults = dict(num_rounds=3, local_steps=2, batch_size=32, lr=0.05, rho=2.0, zeta=2.0, seed=0)
    defaults.update(kwargs)
    return FLConfig(algorithm=algorithm, **defaults)


def assert_hier_bitwise(a_runner, b_runner, a_history, b_history):
    assert histories_bitwise_equal(a_history, b_history)
    assert np.array_equal(a_runner.server.global_params, b_runner.server.global_params)
    for ea, eb in zip(a_runner.edges, b_runner.edges):
        assert np.array_equal(ea.server.global_params, eb.server.global_params)
        if hasattr(ea.server, "duals"):
            for cid in ea.shard:
                assert np.array_equal(ea.server.duals[cid], eb.server.duals[cid])


# ------------------------------------------------------------- the harness
@pytest.fixture(scope="module")
def chaos_result():
    return run_chaos(
        ChaosSettings(
            num_clients=16,
            num_edges=8,
            kills=2,
            num_rounds=4,
            bitwise_rounds=2,
            samples_per_client=8,
            test_size=32,
            seed=0,
        )
    )


class TestChaosHarness:
    def test_converges_under_churn(self, chaos_result):
        assert chaos_result.converged
        assert chaos_result.chaos_accuracy >= chaos_result.baseline_accuracy - 0.05

    def test_every_random_kill_recovers(self, chaos_result):
        assert chaos_result.kills_recovered == chaos_result.kills_planned == 2
        assert chaos_result.fault_stats["edge_kills"] == 2
        assert chaos_result.fault_stats["recoveries"] >= 2

    def test_boundary_crash_recover_is_bitwise(self, chaos_result):
        assert chaos_result.bitwise_identical
        assert chaos_result.bitwise_algorithm == "iiadmm"

    def test_churn_run_reports_fault_columns(self, chaos_result):
        history = chaos_result.histories["chaos"]
        assert all(r.failed_clients is not None for r in history.rounds)
        assert all(r.recovered_edges is not None for r in history.rounds)
        assert sum(len(r.recovered_edges) for r in history.rounds) >= 2
        assert chaos_result.ok


# ------------------------------------------------- sync hier crash-recovery
class TestHierSyncEdgeCrash:
    @pytest.mark.parametrize("algorithm", ["fedavg", "iiadmm"])
    def test_crash_replay_is_bitwise_the_crash_free_run(self, algorithm):
        clients, test = make_clients_and_test()
        clean = build_hier_federation(
            base_config(algorithm), model_fn, clients, test_dataset=test, topology="edges:2"
        )
        clean_history = clean.run(3)
        crashed = build_hier_federation(
            base_config(algorithm), model_fn, clients, test_dataset=test, topology="edges:2"
        )
        crashed.enable_faults(FaultPlan(seed=0, edge_crash_rounds={1: (0,)}))
        crashed_history = crashed.run(3)
        assert_hier_bitwise(clean, crashed, clean_history, crashed_history)
        assert crashed.injector.stats.edge_kills == 1
        assert crashed.injector.stats.recoveries == 1
        assert crashed_history.rounds[1].recovered_edges == (0,)
        assert crashed_history.rounds[0].recovered_edges == ()

    def test_multiple_edges_crash_same_round(self):
        clients, test = make_clients_and_test()
        runner = build_hier_federation(
            base_config("iiadmm"), model_fn, clients, test_dataset=test, topology="edges:4"
        )
        runner.enable_faults(FaultPlan(seed=0, edge_crash_rounds={0: (0, 2), 2: (1,)}))
        history = runner.run(3)
        assert len(history) == 3
        assert history.rounds[0].recovered_edges == (0, 2)
        assert history.rounds[2].recovered_edges == (1,)
        assert runner.injector.stats.recoveries == 3

    def test_link_faults_degrade_but_complete(self):
        clients, test = make_clients_and_test()
        runner = build_hier_federation(
            base_config("fedavg"), model_fn, clients, test_dataset=test, topology="edges:2"
        )
        runner.enable_faults(FaultPlan(seed=3, drop_prob=0.15, timeout_prob=0.1))
        history = runner.run(3)
        assert len(history) == 3
        assert np.all(np.isfinite(runner.server.global_params))
        assert runner.injector.stats.drops + runner.injector.stats.timeouts > 0
        assert all(r.retries is not None for r in history.rounds)


# ------------------------------------------------ async hier kill / recover
class TestHierAsyncKillRecover:
    def _build(self, clients, test, **kwargs):
        kwargs.setdefault("strategy", RootFedBuff(2))
        return build_hier_async_federation(
            base_config("fedavg"), model_fn, clients, test_dataset=test,
            topology="edges:2", **kwargs
        )

    def test_event_count_kills_recover_and_converge(self):
        clients, test = make_clients_and_test()
        runner = self._build(clients, test)
        runner.enable_faults(FaultPlan(seed=0, edge_kills=((4, 0), (9, 1))))
        history = runner.run(4)
        assert len(history) == 4
        assert runner.injector.stats.edge_kills == 2
        assert runner.injector.stats.recoveries == 2
        assert runner.recovery_seconds > 0.0
        assert sum(len(r.recovered_edges) for r in history.rounds) == 2

    def test_round_based_boundary_kill_is_bitwise(self):
        clients, test = make_clients_and_test()
        clean = self._build(clients, test, edge_round_based=True)
        clean_history = clean.run(3)
        killed = self._build(clients, test, edge_round_based=True)
        killed.enable_faults(FaultPlan(seed=0, edge_boundary_kills={0: (0,), 1: (1,)}))
        killed_history = killed.run(3)
        assert_hier_bitwise(clean, killed, clean_history, killed_history)
        assert killed.injector.stats.recoveries == 2

    def test_enable_faults_requires_unprimed_runner(self):
        clients, test = make_clients_and_test()
        runner = self._build(clients, test)
        runner.run(1)
        with pytest.raises(RuntimeError, match="arm"):
            runner.enable_faults(FaultPlan(seed=0))

    def test_backpressure_bounds_in_flight_and_completes(self):
        clients, test = make_clients_and_test()
        runner = self._build(clients, test, max_in_flight=2)
        for actor in runner.actors:
            assert actor.max_in_flight == 2
        history = runner.run(3)
        assert len(history) == 3
        with pytest.raises(ValueError, match="max_in_flight"):
            self._build(clients, test, max_in_flight=0)

    def test_client_crashes_on_virtual_timeline(self):
        clients, test = make_clients_and_test()
        runner = self._build(clients, test)
        runner.enable_faults(FaultPlan(seed=1, client_crash_prob=0.3))
        history = runner.run(4)
        assert len(history) == 4
        assert runner.injector.stats.client_crashes > 0
        assert any(r.failed_clients for r in history.rounds)
