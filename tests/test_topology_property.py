"""Property-based tests (hypothesis) for hierarchical sharding + partials.

Topology properties (ISSUE 5 satellite):

* **partition** — for every spec and population, each client lands on
  exactly one edge and shard sizes are near-equal (±1);
* **determinism** — a fixed seed always produces identical shards (and a
  different seed is allowed to differ);
* **label locality** — ``by-label`` shards are contiguous in label-sorted
  order: consecutive shards cover non-decreasing label ranges, and the
  number of (label, edge) incidences is at most ``labels + edges − 1`` (each
  shard boundary splits at most one label).

Partial-aggregation properties (the substrate of the hierarchy's
bit-exactness, :mod:`repro.core.partial`):

* the exact accumulator reproduces per-element ``math.fsum`` — i.e. the
  correctly rounded exact sum — for any values;
* grouping invariance: folding the same terms through any shard grouping
  (merged via the packed wire form) is bit-identical to the flat fold.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partial import ExactPartial, pack_partial, unpack_partial
from repro.hier import build_topology, parse_topology


# ----------------------------------------------------------------- strategies
@st.composite
def populations(draw):
    num_clients = draw(st.integers(min_value=1, max_value=200))
    num_edges = draw(st.integers(min_value=1, max_value=min(16, num_clients)))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return num_clients, num_edges, seed


@st.composite
def labelled_populations(draw):
    num_clients, num_edges, seed = draw(populations())
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=num_clients,
            max_size=num_clients,
        )
    )
    return num_clients, num_edges, seed, np.asarray(labels)


# ------------------------------------------------------------------ topology
@settings(max_examples=80, deadline=None)
@given(populations())
def test_every_client_on_exactly_one_edge(pop):
    num_clients, num_edges, seed = pop
    topo = build_topology(f"edges:{num_edges}", num_clients, seed=seed)
    all_ids = sorted(cid for shard in topo.shards for cid in shard)
    assert all_ids == list(range(num_clients))  # exactly once, no gaps
    assert topo.num_edges == num_edges
    sizes = [len(shard) for shard in topo.shards]
    assert max(sizes) - min(sizes) <= 1  # near-equal shards
    for shard in topo.shards:
        for cid in shard:
            assert topo.edge_of(cid) == topo.shards.index(shard)


@settings(max_examples=60, deadline=None)
@given(populations())
def test_shards_deterministic_under_fixed_seed(pop):
    num_clients, num_edges, seed = pop
    a = build_topology(f"edges:{num_edges}", num_clients, seed=seed)
    b = build_topology(f"edges:{num_edges}", num_clients, seed=seed)
    assert a.shards == b.shards


@settings(max_examples=60, deadline=None)
@given(labelled_populations())
def test_by_label_preserves_label_locality(pop):
    num_clients, num_edges, seed, labels = pop
    topo = build_topology(f"edges:{num_edges}:by-label", num_clients, labels=labels, seed=seed)
    assert sorted(c for s in topo.shards for c in s) == list(range(num_clients))
    # Consecutive shards cover non-decreasing label ranges...
    non_empty = [s for s in topo.shards if s]
    for left, right in zip(non_empty, non_empty[1:]):
        assert max(labels[c] for c in left) <= min(labels[c] for c in right)
    # ...so each shard boundary splits at most one label.
    incidences = len({(int(labels[c]), e) for e, s in enumerate(topo.shards) for c in s})
    assert incidences <= len(set(labels.tolist())) + topo.num_edges - 1


def test_by_label_string_spec_is_parsed():
    spec = parse_topology("edges:4:by-label")
    assert spec.num_edges == 4 and spec.mode == "by-label"
    assert parse_topology("edges:4").mode == "seeded"


# ------------------------------------------------------------- exact partials
@st.composite
def term_matrices(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    dim = draw(st.integers(min_value=1, max_value=6))
    exponents = draw(
        st.lists(st.integers(min_value=-12, max_value=12), min_size=n, max_size=n)
    )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    terms = rng.standard_normal((n, dim)) * np.power(10.0, exponents)[:, None]
    if draw(st.booleans()):  # engineered halfway cases
        terms = np.round(terms * 4) / 4
    cut_count = draw(st.integers(min_value=0, max_value=4))
    cuts = sorted(draw(st.integers(min_value=0, max_value=n)) for _ in range(cut_count))
    return terms, cuts


@settings(max_examples=80, deadline=None)
@given(term_matrices())
def test_exact_partial_matches_fsum_under_any_grouping(case):
    terms, cuts = case
    n, dim = terms.shape
    reference = np.array([math.fsum(terms[:, j]) for j in range(dim)])

    flat = ExactPartial(dim)
    for term in terms:
        flat.add(term)
    assert np.array_equal(flat.round(), reference)

    root = ExactPartial(dim)
    for group in np.split(terms, cuts):
        shard = ExactPartial(dim)
        for term in group:
            shard.add(term)
        # Round-trip each shard partial through its packed wire form.
        root.merge(unpack_partial(pack_partial(shard)))
    assert np.array_equal(root.round(), reference)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=2, max_value=500))
def test_exact_partial_float32_grouping_invariance(seed, n):
    rng = np.random.default_rng(seed)
    terms = rng.standard_normal((n, 8)).astype(np.float32)
    flat = ExactPartial(8, np.float32)
    for term in terms:
        flat.add(term)
    cut = int(rng.integers(0, n))
    merged = ExactPartial(8, np.float32)
    for group in (terms[cut:], terms[:cut]):  # different order, too
        shard = ExactPartial(8, np.float32)
        for term in group:
            shard.add(term)
        merged.merge(shard)
    assert np.array_equal(flat.round(), merged.round())


def test_exact_partial_component_count_stays_compact():
    rng = np.random.default_rng(0)
    acc = ExactPartial(32)
    for _ in range(5000):
        acc.add(rng.standard_normal(32))
    # Non-overlap + per-lane compaction keep the expansion a handful of
    # arrays — this is what bounds a shard summary's wire size.
    assert len(acc) <= 16
