"""Golden-trace regression fixture for the Fig. 2 training numerics.

Three fast-moving performance PRs (flat engine, async federation, wire
codecs) all promise "bit-identical" behaviour, but until now nothing pinned
the *absolute* numerics across sessions — a silent drift in any layer
(kernels, loader, codec accounting, aggregation order) would only surface as
a vague accuracy change.  This test freezes a tiny seeded Fig. 2 workload's
per-round **loss / accuracy / comm-bytes** for all three algorithms into
``tests/golden/fig2_trace.json`` and fails with a readable per-round diff on
any drift.

Regenerate intentionally with ``pytest tests/test_golden_trace.py
--update-golden`` and review the JSON diff like code.
"""

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.core import FLConfig, build_federation, build_model
from repro.data import load_dataset

GOLDEN_PATH = Path(__file__).parent / "golden" / "fig2_trace.json"

#: tiny seeded Fig. 2 workload: small enough for tier-1, big enough that all
#: three algorithms actually learn (accuracies move every round)
WORKLOAD = {
    "dataset": "mnist",
    "model": "mlp",
    "num_clients": 3,
    "train_size": 96,
    "test_size": 48,
    "num_rounds": 3,
    "local_steps": 2,
    "batch_size": 32,
    "lr": 0.03,
    "rho": 10.0,
    "zeta": 10.0,
    "seed": 0,
    "dtype": "float64",
    "codec": "identity",
}
ALGORITHMS = ("fedavg", "iceadmm", "iiadmm")

#: comparison tolerance: traces are deterministic on one platform, but JSON
#: float round-trips and BLAS build differences deserve a hair of slack
REL_TOL = 1e-9


def _run_trace(algorithm: str):
    clients, test, spec = load_dataset(
        WORKLOAD["dataset"],
        num_clients=WORKLOAD["num_clients"],
        train_size=WORKLOAD["train_size"],
        test_size=WORKLOAD["test_size"],
        seed=WORKLOAD["seed"],
    )
    config = FLConfig(
        algorithm=algorithm,
        num_rounds=WORKLOAD["num_rounds"],
        local_steps=WORKLOAD["local_steps"],
        batch_size=WORKLOAD["batch_size"],
        lr=WORKLOAD["lr"],
        rho=WORKLOAD["rho"],
        zeta=WORKLOAD["zeta"],
        seed=WORKLOAD["seed"],
        dtype=WORKLOAD["dtype"],
        codec=WORKLOAD["codec"],
    )
    model_fn = lambda: build_model(
        WORKLOAD["model"], spec.image_shape, spec.num_classes, rng=np.random.default_rng(7)
    )
    history = build_federation(config, model_fn, clients, test).run()
    return [
        {
            "round": r.round,
            "loss": r.test_loss,
            "accuracy": r.test_accuracy,
            "comm_bytes": r.comm_bytes,
        }
        for r in history.rounds
    ]


def generate_traces():
    return {"workload": WORKLOAD, "traces": {algo: _run_trace(algo) for algo in ALGORITHMS}}


def _diff_traces(golden, current) -> str:
    """Readable per-round diff of every drifted cell."""
    lines = []
    for algo in ALGORITHMS:
        gold_rows = golden["traces"][algo]
        new_rows = current["traces"][algo]
        if len(gold_rows) != len(new_rows):
            lines.append(f"{algo}: round count {len(gold_rows)} -> {len(new_rows)}")
            continue
        for g, n in zip(gold_rows, new_rows):
            for key in ("loss", "accuracy", "comm_bytes"):
                gv, nv = g[key], n[key]
                if key == "comm_bytes":
                    drifted = gv != nv
                else:
                    drifted = not math.isclose(gv, nv, rel_tol=REL_TOL, abs_tol=REL_TOL)
                if drifted:
                    lines.append(
                        f"{algo} round {g['round']}: {key} {gv!r} -> {nv!r} "
                        f"(delta {nv - gv:+.3e})"
                    )
    return "\n".join(lines)


def test_fig2_golden_trace(request):
    """Per-round loss/accuracy/comm-bytes match the checked-in golden trace."""
    current = generate_traces()
    if request.config.getoption("--update-golden"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(current, indent=2) + "\n")
        pytest.skip(f"golden trace regenerated at {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; generate it with "
        f"`pytest tests/test_golden_trace.py --update-golden`"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["workload"] == WORKLOAD, (
        "golden trace was recorded for a different workload; regenerate with "
        "--update-golden and review the diff"
    )
    diff = _diff_traces(golden, current)
    if diff:
        pytest.fail(
            "training numerics drifted from tests/golden/fig2_trace.json:\n"
            + diff
            + "\n\nIf the drift is intentional, regenerate with "
            "`pytest tests/test_golden_trace.py --update-golden` and review the JSON diff."
        )


def test_golden_trace_covers_all_algorithms():
    """The fixture itself stays complete (guards hand-edits)."""
    golden = json.loads(GOLDEN_PATH.read_text())
    assert set(golden["traces"]) == set(ALGORITHMS)
    for algo in ALGORITHMS:
        assert len(golden["traces"][algo]) == WORKLOAD["num_rounds"]
        for row in golden["traces"][algo]:
            assert row["comm_bytes"] > 0
            assert 0.0 <= row["accuracy"] <= 1.0
