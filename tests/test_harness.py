"""Tests for the experiment harnesses (table1, fig2, scaling, comm, hetero, volume, ablation, async)."""

import math

import numpy as np
import pytest

from repro.harness import (
    AblationSettings,
    AsyncCompareSettings,
    run_async_compare,
    CommCompareSettings,
    CommVolumeSettings,
    Fig2Settings,
    HeteroSettings,
    PAPER_TABLE1,
    ScalingSettings,
    format_check,
    format_series,
    format_table,
    render_table1,
    run_comm_compare,
    run_comm_volume,
    run_fig2,
    run_hetero,
    run_scaling,
    run_zeta_ablation,
    verify_appfl_column,
)


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2.5], ["x", 0.0001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        out = format_series("s", [1, 2], [0.5, 0.25])
        assert "s" in out and "0.5" in out and "0.25" in out

    def test_format_check(self):
        assert format_check("d", "1", "1", True).startswith("[OK ]")
        assert format_check("d", "1", "2", False).startswith("[DIFF]")


class TestTable1:
    def test_appfl_column_verified(self):
        assert verify_appfl_column() == PAPER_TABLE1["APPFL"]

    def test_render_contains_all_frameworks(self):
        out = render_table1()
        for fw in ("OpenFL", "FedML", "TFF", "PySyft", "APPFL"):
            assert fw in out


class TestFig2:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        settings = Fig2Settings(
            datasets=("mnist",),
            algorithms=("fedavg", "iiadmm"),
            epsilons=(5.0, math.inf),
            num_rounds=2,
            local_steps=1,
            train_size=120,
            test_size=60,
            num_clients=3,
        )
        return run_fig2(settings)

    def test_grid_size(self, tiny_result):
        assert len(tiny_result.cells) == 1 * 2 * 2

    def test_cell_lookup(self, tiny_result):
        cell = tiny_result.cell("mnist", "fedavg", math.inf)
        assert cell.dataset == "mnist"
        assert 0.0 <= cell.final_accuracy <= 1.0
        assert len(cell.accuracy_curve) == 2
        with pytest.raises(KeyError):
            tiny_result.cell("mnist", "fedavg", 99.0)

    def test_accuracy_matrix_and_render(self, tiny_result):
        matrix = tiny_result.accuracy_matrix("mnist")
        assert set(matrix) == {"fedavg", "iiadmm"}
        assert "Figure 2" in tiny_result.render()

    def test_settings_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROUNDS", "12")
        assert Fig2Settings.from_env().num_rounds == 12


class TestScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scaling(ScalingSettings(num_rounds=2, process_counts=(5, 24, 203)))

    def test_points_and_lookup(self, result):
        assert [p.num_processes for p in result.points] == [5, 24, 203]
        assert result.point(24).num_processes == 24
        with pytest.raises(KeyError):
            result.point(7)

    def test_speedup_baseline_is_one(self, result):
        assert result.points[0].speedup == pytest.approx(1.0)
        assert result.points[0].ideal_speedup == pytest.approx(1.0)

    def test_speedup_increases(self, result):
        xs, ys = result.speedups()
        assert ys[-1] > ys[0]

    def test_gather_percentage_increases(self, result):
        xs, ys = result.gather_percentages()
        assert ys[-1] > ys[0]

    def test_render_mentions_figures(self, result):
        out = result.render()
        assert "Figure 3a" in out and "Figure 3b" in out

    def test_no_straggler_wait_variant_has_smaller_gather(self):
        base = ScalingSettings(num_rounds=2, process_counts=(203,))
        with_wait = run_scaling(base).point(203)
        without_wait = run_scaling(
            ScalingSettings(num_rounds=2, process_counts=(203,), include_straggler_wait=False)
        ).point(203)
        assert without_wait.avg_gather_seconds < with_wait.avg_gather_seconds


class TestCommCompare:
    @pytest.fixture(scope="class")
    def result(self):
        return run_comm_compare(CommCompareSettings(num_clients=20, num_rounds=30, boxplot_clients=(1, 5, 19, 200)))

    def test_every_client_present(self, result):
        assert len(result.grpc_cumulative) == 20
        assert len(result.mpi_cumulative) == 20

    def test_out_of_range_boxplot_client_skipped(self, result):
        assert all(b.client_id < 20 for b in result.box_stats)

    def test_grpc_slower(self, result):
        assert result.median_slowdown() > 1.5
        assert np.all(result.slowdown_factors() > 1.0)

    def test_box_stats_ordered(self, result):
        for b in result.box_stats:
            assert b.minimum <= b.q1 <= b.median <= b.q3 <= b.maximum
            assert b.spread_factor >= 1.0

    def test_render(self, result):
        out = result.render()
        assert "Figure 4a" in out and "Figure 4b" in out

    def test_matches_real_communicator_stack_at_small_scale(self):
        """The analytic costing equals what the communicator objects would charge (MPI side)."""
        from repro.comm import MPISimCommunicator, state_dict_nbytes
        from repro.core import build_model

        settings = CommCompareSettings(num_clients=4, num_rounds=3, skip_first_round=False)
        result = run_comm_compare(settings)
        model = build_model("cnn", (1, 28, 28), 62, rng=np.random.default_rng(settings.seed))
        state = model.state_dict()
        comm = MPISimCommunicator(num_processes=4)
        ids = list(range(4))
        for rnd in range(3):
            comm.broadcast(rnd, state, ids)
            comm.collect(rnd, {i: state for i in ids})
        np.testing.assert_allclose(result.mpi_cumulative[0], comm.client_comm_seconds(0), rtol=1e-9)


class TestHeteroAndVolume:
    def test_hetero_matches_paper(self):
        result = run_hetero(HeteroSettings())
        assert result.ratio == pytest.approx(1.64, rel=0.05)
        assert set(result.times) == {"A100", "V100"}
        assert "1.64" in result.render()

    def test_comm_volume_ratios(self):
        result = run_comm_volume(CommVolumeSettings(num_rounds=1, train_size=80, hidden=8))
        assert result.uplink_ratio("iceadmm", "iiadmm") == pytest.approx(2.0)
        assert result.uplink_ratio("fedavg", "iiadmm") == pytest.approx(1.0)
        with pytest.raises(KeyError):
            result.row("unknown")

    def test_comm_volume_render(self):
        result = run_comm_volume(CommVolumeSettings(num_rounds=1, train_size=80, hidden=8))
        assert "2.00" in result.render()

    def test_comm_volume_codec_shrinks_wire_bytes(self):
        raw = run_comm_volume(CommVolumeSettings(num_rounds=1, train_size=80, hidden=8))
        packed = run_comm_volume(
            CommVolumeSettings(num_rounds=1, train_size=80, hidden=8, codec="int8")
        )
        for algorithm in ("fedavg", "iceadmm", "iiadmm"):
            assert (
                packed.row(algorithm).uplink_bytes_per_client_round
                < raw.row(algorithm).uplink_bytes_per_client_round / 4
            )
        # The algorithmic 2x uplink claim survives quantization.
        assert packed.uplink_ratio("iceadmm", "iiadmm") == pytest.approx(2.0, rel=0.05)
        assert "int8" in packed.render()


class TestCodecSweep:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.harness import CodecSweepSettings, run_codec_sweep

        return run_codec_sweep(
            CodecSweepSettings(
                model="mlp",
                num_clients=2,
                num_rounds=3,
                local_steps=2,
                train_size=160,
                test_size=80,
                target_margin=0.05,
            )
        )

    def test_all_arms_present(self, result):
        assert [r.codec for r in result.rows][0] == "identity"
        assert {"identity", "fp16", "int8", "delta|int8|topk:0.1"} <= {r.codec for r in result.rows}

    def test_wire_reduction_ordering(self, result):
        assert result.row("identity").wire_reduction == pytest.approx(1.0)
        assert result.row("fp16").wire_reduction == pytest.approx(4.0, rel=0.05)  # f64 -> f16
        assert result.row("int8").wire_reduction > 4.0

    def test_bytes_to_target_favours_compression(self, result):
        identity = result.row("identity")
        assert identity.rounds_to_target is not None  # target derived from itself
        best = result.best_bytes_to_target()
        assert best.bytes_to_target <= identity.bytes_to_target

    def test_render(self, result):
        out = result.render()
        assert "B→target" in out and "identity" in out


class TestAsyncCompare:
    @pytest.fixture(scope="class")
    def result(self):
        settings = AsyncCompareSettings(
            model="mlp",
            num_clients=6,
            train_size=240,
            test_size=80,
            num_rounds=2,
            local_steps=1,
            target_accuracy=0.3,
        )
        return run_async_compare(settings)

    def test_all_modes_present(self, result):
        assert {r.mode for r in result.rows} == {"sync", "fedasync", "fedbuff"}
        with pytest.raises(KeyError):
            result.row("unknown")

    def test_equal_update_budgets(self, result):
        sync = result.row("sync")
        assert sync.client_updates == 2 * 6
        assert result.row("fedasync").client_updates == sync.client_updates
        # FedBuff flushes in buffers of K; budget matches up to in-flight tail.
        assert result.row("fedbuff").server_rounds == sync.client_updates // 3

    def test_sync_round_has_zero_staleness_and_slowest_clock(self, result):
        sync = result.row("sync")
        assert sync.max_staleness == 0
        # The synchronous mode blocks on the CPU straggler every round: its
        # simulated wall clock dominates both async modes'.
        assert sync.sim_seconds_total > result.row("fedasync").sim_seconds_total
        assert sync.sim_seconds_total > result.row("fedbuff").sim_seconds_total

    def test_wall_clock_to_target(self, result):
        for row in result.rows:
            if row.sim_seconds_to_target is not None:
                assert 0 < row.sim_seconds_to_target <= row.sim_seconds_total
        speedup = result.speedup_to_target("fedbuff")
        assert speedup is None or speedup > 0

    def test_render(self, result):
        out = result.render()
        assert "simulated wall clock" in out.lower()
        assert "sim_clock_s" in out  # per-round histories included
        assert "fedbuff" in out

    def test_settings_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLIENTS", "9")
        assert AsyncCompareSettings.from_env().num_clients == 9

    def test_device_mix_cycles(self):
        settings = AsyncCompareSettings(num_clients=5)
        names = [d.name for d in settings.devices()]
        assert names == ["A100", "V100", "CPU", "A100", "V100"]


class TestAblation:
    def test_zeta_ablation_rows(self):
        settings = AblationSettings(num_rounds=2, local_steps=1, train_size=150, test_size=60, hidden=8)
        result = run_zeta_ablation((0.0, 10.0), settings)
        assert [r.value for r in result.rows] == [0.0, 10.0]
        assert result.best().final_accuracy == max(r.final_accuracy for r in result.rows)
        assert "Ablation" in result.render()
