"""Checkpoint/resume equivalence: interrupted runs are bitwise uninterrupted.

The contract of :class:`repro.scale.RunCheckpoint`: kill a run at round *k*
(sync) or after an arbitrary number of timeline events (async), rebuild the
federation from scratch, restore, continue — and the resulting history is
**bitwise identical** to a run that was never interrupted, including IIADMM's
"independent but identical" dual replicas and FedBuff's half-full buffers.
"""

import numpy as np
import pytest

from repro.asyncfl import FedBuffStrategy, UniformSampler, build_async_federation
from repro.comm import TCPLinkModel
from repro.core import FLConfig, build_federation, build_model
from repro.data import load_dataset
from repro.scale import RunCheckpoint, build_virtual_async_federation, build_virtual_federation
from repro.simulator import DEVICE_CATALOG

NUM_CLIENTS = 5
ROUNDS = 6


def _workload():
    return load_dataset("mnist", num_clients=NUM_CLIENTS, train_size=100, test_size=50, seed=0)


def _config(algorithm, codec="identity", **kwargs):
    return FLConfig(
        algorithm=algorithm,
        num_rounds=ROUNDS,
        local_steps=2,
        batch_size=32,
        lr=0.03,
        rho=10.0,
        zeta=10.0,
        seed=0,
        codec=codec,
        **kwargs,
    )


def _model_fn(spec):
    return lambda: build_model("mlp", spec.image_shape, spec.num_classes, rng=np.random.default_rng(7))


def _key(history):
    """The deterministic fields of a history (wall-clock timings excluded)."""
    return [
        (
            r.round,
            r.test_accuracy,
            r.test_loss,
            r.comm_bytes,
            r.wall_clock_seconds,
            r.participating_clients,
        )
        for r in history.rounds
    ]


# ------------------------------------------------------------------ sync runs
class TestSyncCheckpoint:
    @pytest.mark.parametrize("algorithm", ["fedavg", "iceadmm", "iiadmm"])
    @pytest.mark.parametrize("interrupt_at", [1, 3])
    def test_resume_matches_uninterrupted(self, algorithm, interrupt_at):
        clients, test, spec = _workload()
        config = _config(algorithm)
        full = build_federation(config, _model_fn(spec), clients, test)
        reference = full.run(ROUNDS)

        first = build_federation(config, _model_fn(spec), clients, test)
        first.run(interrupt_at)
        blob = RunCheckpoint.save(first).to_bytes()

        resumed = build_federation(config, _model_fn(spec), clients, test)
        RunCheckpoint.from_bytes(blob).restore(resumed)
        history = resumed.run(ROUNDS - interrupt_at)

        assert _key(history) == _key(reference)
        np.testing.assert_array_equal(resumed.server.global_params, full.server.global_params)

    def test_resume_with_lossy_codec_keeps_dual_replicas(self):
        """IIADMM under delta|int8: resumed client/server duals stay bitwise equal."""
        clients, test, spec = _workload()
        config = _config("iiadmm", codec="delta|int8")
        full = build_federation(config, _model_fn(spec), clients, test)
        reference = full.run(ROUNDS)

        first = build_federation(config, _model_fn(spec), clients, test)
        first.run(2)
        blob = RunCheckpoint.save(first).to_bytes()
        resumed = build_federation(config, _model_fn(spec), clients, test)
        RunCheckpoint.from_bytes(blob).restore(resumed)
        history = resumed.run(ROUNDS - 2)

        assert _key(history) == _key(reference)
        for client in resumed.clients:
            np.testing.assert_array_equal(client.dual, resumed.server.duals[client.client_id])

    def test_store_backed_resume(self):
        """Virtual populations checkpoint through the store snapshot."""
        clients, test, spec = _workload()
        config = _config("iiadmm")
        reference = build_federation(config, _model_fn(spec), clients, test).run(ROUNDS)

        first = build_virtual_federation(config, _model_fn(spec), clients, live_cap=2, test_dataset=test)
        first.run(3)
        blob = RunCheckpoint.save(first).to_bytes()
        resumed = build_virtual_federation(config, _model_fn(spec), clients, live_cap=2, test_dataset=test)
        RunCheckpoint.from_bytes(blob).restore(resumed)
        history = resumed.run(ROUNDS - 3)
        assert _key(history) == _key(reference)

    def test_save_does_not_disturb_the_live_run(self):
        clients, test, spec = _workload()
        config = _config("iiadmm")
        reference = build_federation(config, _model_fn(spec), clients, test).run(ROUNDS)
        runner = build_federation(config, _model_fn(spec), clients, test)
        runner.run(2)
        RunCheckpoint.save(runner)  # capture mid-run...
        history = runner.run(ROUNDS - 2)  # ...and keep going
        assert _key(history) == _key(reference)

    def test_capture_is_frozen_at_capture_time(self):
        """A checkpoint must not mutate when the captured runner keeps running."""
        clients, test, spec = _workload()
        config = _config("iiadmm")
        reference = build_federation(config, _model_fn(spec), clients, test).run(ROUNDS)
        runner = build_federation(config, _model_fn(spec), clients, test)
        runner.run(2)
        checkpoint = RunCheckpoint.capture(runner)
        frozen = checkpoint.to_bytes()
        runner.run(ROUNDS - 2)  # mutates the server/client state the capture walked
        assert checkpoint.to_bytes() == frozen
        resumed = build_federation(config, _model_fn(spec), clients, test)
        checkpoint.restore(resumed)  # restores round-2 state, not round-6
        assert len(resumed.history) == 2
        history = resumed.run(ROUNDS - 2)
        assert _key(history) == _key(reference)

    def test_restore_validates_topology(self):
        clients, test, spec = _workload()
        blob = RunCheckpoint.save(
            build_federation(_config("fedavg"), _model_fn(spec), clients, test)
        ).to_bytes()
        other = build_federation(_config("iiadmm"), _model_fn(spec), clients, test)
        with pytest.raises(ValueError, match="does not match"):
            RunCheckpoint.from_bytes(blob).restore(other)


# ----------------------------------------------------------------- async runs
def _build_async(config, spec, clients, test, store=False, parallel=1):
    mix = [DEVICE_CATALOG[k] for k in ("A100", "V100", "CPU")]
    devices = [mix[i % len(mix)] for i in range(NUM_CLIENTS)]
    kwargs = dict(
        strategy=FedBuffStrategy(2),
        sampler=UniformSampler(NUM_CLIENTS, fraction=0.5, seed=0),
        devices=devices,
        link=TCPLinkModel(),
        concurrency=2,
    )
    if store:
        return build_virtual_async_federation(
            config, _model_fn(spec), clients, live_cap=3, test_dataset=test, **kwargs
        )
    return build_async_federation(config, _model_fn(spec), clients, test, **kwargs)


class TestAsyncCheckpoint:
    @pytest.mark.parametrize("algorithm", ["fedavg", "iiadmm"])
    @pytest.mark.parametrize("max_events", [1, 7, 16])
    def test_resume_at_arbitrary_event_counts(self, algorithm, max_events):
        """Interrupt mid-timeline (even mid-virtual-instant), resume, compare."""
        clients, test, spec = _workload()
        config = _config(algorithm)
        full = _build_async(config, spec, clients, test)
        reference = full.run(ROUNDS)

        first = _build_async(config, spec, clients, test)
        first.run(ROUNDS, max_events=max_events)
        assert len(first.history) < ROUNDS  # genuinely interrupted
        blob = RunCheckpoint.save(first).to_bytes()

        resumed = _build_async(config, spec, clients, test)
        RunCheckpoint.from_bytes(blob).restore(resumed)
        history = resumed.run(ROUNDS - len(resumed.history))

        assert _key(history) == _key(reference)
        np.testing.assert_array_equal(resumed.server.global_params, full.server.global_params)
        assert resumed.async_server.staleness_log == full.async_server.staleness_log

    def test_fedbuff_half_full_buffer_survives(self):
        """A checkpoint taken with buffered-but-unflushed uploads resumes exactly."""
        clients, test, spec = _workload()
        config = _config("iiadmm")
        full = _build_async(config, spec, clients, test)
        reference = full.run(ROUNDS)

        first = _build_async(config, spec, clients, test)
        # walk forward until the FedBuff buffer is half full at the stop point
        events = 0
        while not first.strategy._buffer:
            events += 1
            first = _build_async(config, spec, clients, test)
            first.run(ROUNDS, max_events=events)
            assert events < 200
        assert 0 < len(first.strategy._buffer) < first.strategy.buffer_size

        blob = RunCheckpoint.save(first).to_bytes()
        resumed = _build_async(config, spec, clients, test)
        RunCheckpoint.from_bytes(blob).restore(resumed)
        assert len(resumed.strategy._buffer) == len(first.strategy._buffer)
        history = resumed.run(ROUNDS - len(resumed.history))
        assert _key(history) == _key(reference)

    def test_parallel_clients_quiesce(self):
        """Eager thread-pool updates are forced at save time, bit-identically."""
        clients, test, spec = _workload()
        config = _config("iiadmm", parallel_clients=2)
        reference = _build_async(config, spec, clients, test, parallel=2).run(ROUNDS)

        first = _build_async(config, spec, clients, test, parallel=2)
        first.run(ROUNDS, max_events=9)
        blob = RunCheckpoint.save(first).to_bytes()
        resumed = _build_async(config, spec, clients, test, parallel=2)
        RunCheckpoint.from_bytes(blob).restore(resumed)
        history = resumed.run(ROUNDS - len(resumed.history))
        assert _key(history) == _key(reference)

    def test_store_backed_async_resume_with_dual_replicas(self):
        clients, test, spec = _workload()
        config = _config("iiadmm")
        reference = _build_async(config, spec, clients, test).run(ROUNDS)

        first = _build_async(config, spec, clients, test, store=True)
        first.run(ROUNDS, max_events=11)
        blob = RunCheckpoint.save(first).to_bytes()
        resumed = _build_async(config, spec, clients, test, store=True)
        RunCheckpoint.from_bytes(blob).restore(resumed)
        history = resumed.run(ROUNDS - len(resumed.history))
        assert _key(history) == _key(reference)
        # IIADMM invariant after resume: both dual replicas bitwise equal.
        for cid in range(NUM_CLIENTS):
            client = resumed._store.checkout(cid)
            np.testing.assert_array_equal(client.dual, resumed.server.duals[cid])
            resumed._store.release(cid)

    def test_checkpoint_file_round_trip(self, tmp_path):
        clients, test, spec = _workload()
        config = _config("fedavg")
        runner = _build_async(config, spec, clients, test)
        runner.run(2)
        path = tmp_path / "run.ckpt"
        RunCheckpoint.save(runner, path)
        loaded = RunCheckpoint.load(path)
        assert loaded.payload["kind"] == "async"
        assert loaded.payload["meta"]["algorithm"] == "fedavg"
