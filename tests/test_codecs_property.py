"""Property-based tests (hypothesis) for the wire-codec stack.

``tests/test_codecs.py`` checks hand-picked cases; these properties sweep
random tensors, layouts, and codec spec strings:

* round-trip error bounds per stage (identity exact, fp16 half-precision
  relative error, int8 within half a quantization step, delta within float
  cancellation error) and for random composed stacks;
* ``payload_nbytes(packet) == packet.nbytes`` and exact wire-format
  round-tripping through ``encode_packet``/``decode_packet``;
* real-0 exactness for int8 (symmetric quantization keeps 0 at integer 0);
* decode∘encode idempotence: re-encoding an already decoded tensor decodes
  to the identical value for the stages where that is exact (identity, fp16,
  topk) and within one quantization step for int8.

``hypothesis`` is pinned in ``requirements-test.txt``.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.codecs import parse_codec, resolve_codec
from repro.comm.serialization import decode_packet, encode_packet, payload_nbytes

# fp16 overflow (values beyond ±65504 cast to inf) is intentional coverage:
# the round-trip property treats those stacks as unbounded, and downstream
# stages then quantize ±inf — both numpy warnings are expected noise here,
# not a defect signal.
pytestmark = [
    pytest.mark.filterwarnings("ignore:overflow encountered:RuntimeWarning"),
    pytest.mark.filterwarnings("ignore:invalid value encountered:RuntimeWarning"),
]

# ----------------------------------------------------------------- strategies
FLOAT_DTYPES = (np.float32, np.float64)


@st.composite
def tensors(draw, max_entries=64):
    """A random float tensor with a random layout (0-3 dims), finite values."""
    dtype = draw(st.sampled_from(FLOAT_DTYPES))
    ndim = draw(st.integers(min_value=0, max_value=3))
    shape = tuple(draw(st.integers(min_value=1, max_value=4)) for _ in range(ndim))
    n = int(np.prod(shape)) if shape else 1
    values = draw(
        st.lists(
            st.floats(
                min_value=-1e6,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
                width=32,
            ),
            min_size=n,
            max_size=n,
        )
    )
    arr = np.asarray(values, dtype=dtype)
    return arr.reshape(shape) if shape else arr.reshape(())


@st.composite
def states(draw):
    """A random payload dict of 1-3 named tensors."""
    count = draw(st.integers(min_value=1, max_value=3))
    return {f"tensor_{i}": draw(tensors()) for i in range(count)}


@st.composite
def codec_specs(draw):
    """A random ``|``-separated codec spec string (1-3 stages)."""
    stages = draw(
        st.lists(
            st.sampled_from(["identity", "fp16", "int8", "delta", "topk"]),
            min_size=1,
            max_size=3,
        )
    )
    parts = []
    for name in stages:
        if name == "topk":
            fraction = draw(st.sampled_from([0.1, 0.25, 0.5, 1.0]))
            parts.append(f"topk:{fraction:g}")
        else:
            parts.append(name)
    return "|".join(parts)


def _stack_error_bound(spec: str, arr: np.ndarray) -> float:
    """A sound per-stack absolute reconstruction error bound for ``arr``.

    Stages compose left-to-right; each lossy stage's bound is taken on the
    worst-case magnitude of its input (bounded by ``max|arr|``: every stage
    here is non-expanding up to its own error).  ``topk`` zeroes dropped
    entries entirely, so any spec containing it gets an ``amax`` bound.
    """
    amax = float(np.max(np.abs(arr))) if arr.size else 0.0
    if amax == 0.0:
        return 0.0
    bound = 0.0
    topk_drops = False
    for part in spec.split("|"):
        name = part.split(":")[0]
        if name == "fp16" and amax > float(np.finfo(np.float16).max):
            return math.inf  # fp16 overflows to inf outside its range
        if name == "topk" and not part.endswith(":1"):
            topk_drops = True  # dropped entries decode to 0
        elif name == "fp16":
            # relative half-precision step, plus an absolute floor for the
            # subnormal range (values under ~6.1e-5 round in steps of ~6e-8,
            # and anything below the smallest subnormal flushes to 0)
            bound += amax * 2.0**-10 + 6e-8
        elif name == "int8":
            bound += amax / 254.0 * 1.01  # scale/2 = amax/254, plus fp slop
        elif name == "delta":
            bound += amax * 1e-6  # (x - ref) + ref cancellation error
    if topk_drops:
        return amax * 1.001 + bound
    return bound


# ------------------------------------------------------------------ properties
@settings(max_examples=60, deadline=None)
@given(state=states(), spec=codec_specs())
def test_round_trip_error_bounds(state, spec):
    """decode(encode(x)) stays within the composed stack's error bound."""
    pipeline = resolve_codec(spec)
    reference = {k: np.zeros_like(v) for k, v in state.items()}
    packet = pipeline.encode_state(state, reference=reference)
    decoded = pipeline.decode_state(packet, reference=reference)
    for key, original in state.items():
        out = decoded[key]
        assert out.shape == original.shape
        assert out.dtype == original.dtype
        bound = _stack_error_bound(spec, original)
        if math.isinf(bound):
            continue  # fp16 overflow: value bound is meaningless
        assert np.all(np.abs(out - original) <= bound + 1e-12), (
            f"spec {spec!r}: max error {np.max(np.abs(out - original))} "
            f"exceeds bound {bound}"
        )


@settings(max_examples=60, deadline=None)
@given(state=states(), spec=codec_specs())
def test_packet_nbytes_equals_encoded_size(state, spec):
    """payload_nbytes == packet.nbytes == the sum of encoded data + metadata."""
    packet = resolve_codec(spec).encode_state(state)
    assert payload_nbytes(packet) == packet.nbytes
    expected = sum(entry.nbytes for entry in packet.entries.values())
    assert packet.nbytes == expected
    # the encoded arrays themselves never exceed the claimed wire size
    data_bytes = sum(entry.data.nbytes for entry in packet.entries.values())
    assert data_bytes <= packet.nbytes


@settings(max_examples=40, deadline=None)
@given(state=states(), spec=codec_specs())
def test_wire_format_round_trip(state, spec):
    """encode_packet/decode_packet reproduce the packet bit-for-bit."""
    packet = resolve_codec(spec).encode_state(state)
    recovered = decode_packet(encode_packet(packet))
    assert recovered.codec == packet.codec
    assert list(recovered.entries) == list(packet.entries)
    assert recovered.nbytes == packet.nbytes
    for key, entry in packet.entries.items():
        other = recovered.entries[key]
        assert other.shape == entry.shape and other.dtype == entry.dtype
        np.testing.assert_array_equal(other.data, entry.data)


@settings(max_examples=60, deadline=None)
@given(arr=tensors())
def test_int8_real_zero_is_exact(arr):
    """Entries that are exactly 0 decode to exactly 0 (symmetric quantization)."""
    flat = arr.reshape(-1).copy()
    if flat.size:
        flat[:: max(1, flat.size // 3)] = 0.0  # plant exact zeros
    pipeline = resolve_codec("int8")
    decoded = pipeline.decode_state(pipeline.encode_state({"x": flat}))["x"]
    assert np.all(decoded[flat == 0.0] == 0.0)


@settings(max_examples=60, deadline=None)
@given(state=states(), spec=st.sampled_from(["identity", "fp16", "topk:0.25", "fp16|topk:0.5"]))
def test_decode_encode_idempotent_exact(state, spec):
    """For idempotent stages, re-encoding a decoded value is a fixed point."""
    pipeline = resolve_codec(spec)
    once = pipeline.decode_state(pipeline.encode_state(state))
    twice = pipeline.decode_state(pipeline.encode_state(once))
    for key in state:
        np.testing.assert_array_equal(once[key], twice[key])


@settings(max_examples=60, deadline=None)
@given(arr=tensors())
def test_decode_encode_idempotent_int8_within_one_step(arr):
    """int8 re-quantization moves a decoded value at most one quantization step."""
    pipeline = resolve_codec("int8")
    once = pipeline.decode_state(pipeline.encode_state({"x": arr}))["x"]
    twice = pipeline.decode_state(pipeline.encode_state({"x": once}))["x"]
    amax = float(np.max(np.abs(once))) if once.size else 0.0
    step = amax / 127.0 if amax > 0 else 0.0
    assert np.all(np.abs(twice - once) <= step + 1e-12)


@settings(max_examples=40, deadline=None)
@given(spec=codec_specs())
def test_spec_parse_canonical_round_trip(spec):
    """parse(spec).spec is canonical: reparsing it is a fixed point."""
    pipeline = parse_codec(spec)
    assert parse_codec(pipeline.spec).spec == pipeline.spec
    assert resolve_codec(pipeline.spec).spec == pipeline.spec


def test_hypothesis_is_pinned():
    """The test-requirements pin matches the installed hypothesis."""
    import hypothesis

    pins = {}
    import pathlib

    for line in pathlib.Path(__file__).parent.parent.joinpath("requirements-test.txt").read_text().splitlines():
        line = line.split("#")[0].strip()
        if "==" in line:
            name, version = line.split("==")
            pins[name.strip()] = version.strip()
    assert pins.get("hypothesis") == hypothesis.__version__


# --------------------------------------------- client-store crash semantics
# The fault layer's edge recovery (ISSUE 6) leans on one store property: any
# client whose live instance is lost — evicted under memory pressure or wiped
# by a crash — rematerialises *bit-identically* from its last released state,
# whatever interleaving of checkouts, mutations, releases and evictions came
# before.  This property drives random interleavings at random live caps.


@st.composite
def store_scripts(draw):
    num_clients = draw(st.integers(min_value=2, max_value=5))
    live_cap = draw(st.integers(min_value=1, max_value=num_clients))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_clients - 1),
                st.integers(min_value=0, max_value=2**16),
            ),
            min_size=1,
            max_size=12,
        )
    )
    return num_clients, live_cap, ops


@settings(max_examples=12, deadline=None)
@given(store_scripts())
def test_lost_clients_restore_bit_identically(script):
    from repro.core import FLConfig, MLP
    from repro.data import TensorDataset
    from repro.scale import ClientStateStore, make_client_factory

    num_clients, live_cap, ops = script
    config = FLConfig(algorithm="iiadmm", num_rounds=1, local_steps=1, batch_size=4, seed=0)
    rng = np.random.default_rng(0)
    datasets = [
        TensorDataset(rng.standard_normal((6, 4)), rng.integers(0, 2, 6))
        for _ in range(num_clients)
    ]

    def model_fn():
        return MLP(4, 2, hidden_sizes=(3,), rng=np.random.default_rng(5))

    factory = make_client_factory(config, model_fn, datasets, model_fn().state_dict())
    store = ClientStateStore(factory, num_clients, live_cap, config=config)

    expected = {}
    for step, (cid, value_seed) in enumerate(ops):
        client = store.checkout(cid)
        mut = np.random.default_rng(value_seed)
        client.dual[:] = mut.standard_normal(client.dual.size)
        client.rng.random()  # advance the per-client stream too
        expected[cid] = {
            "dual": client.dual.copy(),
            "rng": client.rng.bit_generator.state,
        }
        store.release(cid)

    # The crash: every live in-memory instance is lost; survivors exist only
    # as spilled blobs.  flush() forces exactly that worst case.
    store.flush()
    assert store.live_count == 0

    for cid, state in expected.items():
        revived = store.checkout(cid)
        np.testing.assert_array_equal(revived.dual, state["dual"])
        assert revived.rng.bit_generator.state == state["rng"]
        store.release(cid)

    # Clients never touched by the script materialise fresh from the factory,
    # bit-identical to a factory call outside the store.
    untouched = [c for c in range(num_clients) if c not in expected]
    for cid in untouched[:1]:
        assert np.array_equal(store.checkout(cid).dual, factory(cid).dual)
        store.release(cid)
