"""Tests for DP mechanisms, sensitivity rules, clipping, and the accountant."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy import (
    FedAvgSensitivity,
    FixedSensitivity,
    GaussianMechanism,
    IADMMSensitivity,
    LaplaceMechanism,
    NoPrivacy,
    PrivacyAccountant,
    clip_by_norm,
    clip_state_by_global_norm,
    global_norm,
    make_mechanism,
)


class TestLaplaceMechanism:
    def test_scale_formula(self):
        mech = LaplaceMechanism(epsilon=5.0)
        assert mech.scale(2.0) == pytest.approx(0.4)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=5.0).scale(-1.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=0.0)
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=-2.0)

    def test_noise_statistics(self):
        mech = LaplaceMechanism(epsilon=1.0, rng=np.random.default_rng(0))
        values = np.zeros(200_000)
        noised = mech.perturb_array(values, sensitivity=1.0)
        # Laplace(0, b=1): std = sqrt(2) * b.
        assert abs(noised.mean()) < 0.02
        assert abs(noised.std() - math.sqrt(2)) < 0.05

    def test_smaller_epsilon_more_noise(self):
        values = np.zeros(50_000)
        noisy_strong = LaplaceMechanism(3.0, rng=np.random.default_rng(0)).perturb_array(values, 1.0)
        noisy_weak = LaplaceMechanism(10.0, rng=np.random.default_rng(0)).perturb_array(values, 1.0)
        assert noisy_strong.std() > noisy_weak.std()

    def test_zero_sensitivity_is_identity(self):
        mech = LaplaceMechanism(epsilon=1.0, rng=np.random.default_rng(0))
        values = np.arange(5.0)
        np.testing.assert_allclose(mech.perturb_array(values, 0.0), values)

    def test_does_not_mutate_input(self):
        mech = LaplaceMechanism(epsilon=1.0, rng=np.random.default_rng(0))
        values = np.zeros(10)
        mech.perturb_array(values, 1.0)
        np.testing.assert_allclose(values, 0.0)

    def test_perturb_state(self):
        mech = LaplaceMechanism(epsilon=1.0, rng=np.random.default_rng(0))
        state = {"a": np.zeros(4), "b": np.zeros((2, 2))}
        out = mech.perturb_state(state, 1.0)
        assert set(out) == {"a", "b"}
        assert out["b"].shape == (2, 2)
        assert not np.allclose(out["a"], 0.0)

    def test_is_private_flag(self):
        assert LaplaceMechanism(1.0).is_private
        assert not NoPrivacy().is_private


class TestGaussianMechanism:
    def test_sigma_formula(self):
        mech = GaussianMechanism(epsilon=1.0, delta=1e-5)
        expected = math.sqrt(2 * math.log(1.25 / 1e-5))
        assert mech.sigma(1.0) == pytest.approx(expected)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GaussianMechanism(epsilon=0.0)
        with pytest.raises(ValueError):
            GaussianMechanism(epsilon=1.0, delta=0.0)
        with pytest.raises(ValueError):
            GaussianMechanism(epsilon=1.0, delta=1.5)
        with pytest.raises(ValueError):
            GaussianMechanism(epsilon=1.0).sigma(-1)

    def test_noise_statistics(self):
        mech = GaussianMechanism(epsilon=1.0, delta=1e-5, rng=np.random.default_rng(0))
        noised = mech.perturb_array(np.zeros(100_000), sensitivity=1.0)
        assert abs(noised.std() - mech.sigma(1.0)) < 0.05 * mech.sigma(1.0)


class TestNoPrivacyAndFactory:
    def test_no_privacy_identity(self):
        values = np.arange(6.0)
        out = NoPrivacy().perturb_array(values, 100.0)
        np.testing.assert_allclose(out, values)
        assert out is not values

    def test_factory_inf_returns_noprivacy(self):
        assert isinstance(make_mechanism(math.inf), NoPrivacy)
        assert isinstance(make_mechanism(None), NoPrivacy)

    def test_factory_kinds(self):
        assert isinstance(make_mechanism(1.0, "laplace"), LaplaceMechanism)
        assert isinstance(make_mechanism(1.0, "gaussian"), GaussianMechanism)
        with pytest.raises(ValueError):
            make_mechanism(1.0, "exponential")


class TestSensitivityRules:
    def test_iadmm_formula(self):
        rule = IADMMSensitivity(clip_norm=2.0, rho=3.0, zeta=1.0)
        assert rule.sensitivity() == pytest.approx(2 * 2.0 / 4.0)

    def test_iadmm_matches_paper_formula_2c_over_rho_plus_zeta(self):
        # Section III-B: Δ = 2C/(ρ+ζ).
        assert IADMMSensitivity(clip_norm=1.0, rho=500.0, zeta=0.0).sensitivity() == pytest.approx(2 / 500)

    def test_fedavg_formula(self):
        rule = FedAvgSensitivity(clip_norm=1.0, lr=0.01, num_steps=10)
        assert rule.sensitivity() == pytest.approx(2 * 1.0 * 0.01 * 10)

    def test_fixed(self):
        assert FixedSensitivity(value=0.7).sensitivity() == pytest.approx(0.7)

    @pytest.mark.parametrize(
        "rule",
        [
            lambda: IADMMSensitivity(clip_norm=0.0),
            lambda: IADMMSensitivity(rho=-1.0, zeta=0.0),
            lambda: FedAvgSensitivity(lr=0.0),
            lambda: FedAvgSensitivity(num_steps=0),
            lambda: FixedSensitivity(value=0.0),
        ],
    )
    def test_validation(self, rule):
        with pytest.raises(ValueError):
            rule()

    def test_larger_penalty_means_smaller_sensitivity(self):
        small = IADMMSensitivity(rho=1.0, zeta=1.0).sensitivity()
        large = IADMMSensitivity(rho=100.0, zeta=100.0).sensitivity()
        assert large < small


class TestClipping:
    def test_clip_noop_when_within_norm(self):
        v = np.array([0.3, 0.4])
        np.testing.assert_allclose(clip_by_norm(v, 1.0), v)

    def test_clip_scales_to_max_norm(self):
        v = np.array([3.0, 4.0])
        clipped = clip_by_norm(v, 1.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)
        np.testing.assert_allclose(clipped, v / 5.0)

    def test_clip_invalid_norm(self):
        with pytest.raises(ValueError):
            clip_by_norm(np.ones(3), 0.0)

    def test_clip_zero_vector(self):
        np.testing.assert_allclose(clip_by_norm(np.zeros(4), 1.0), np.zeros(4))

    def test_global_norm(self):
        state = {"a": np.array([3.0]), "b": np.array([4.0])}
        assert global_norm(state) == pytest.approx(5.0)

    def test_clip_state_by_global_norm(self):
        state = {"a": np.array([3.0]), "b": np.array([4.0])}
        clipped, original = clip_state_by_global_norm(state, 1.0)
        assert original == pytest.approx(5.0)
        assert global_norm(clipped) == pytest.approx(1.0)

    def test_clip_state_noop(self):
        state = {"a": np.array([0.1])}
        clipped, norm = clip_state_by_global_norm(state, 1.0)
        np.testing.assert_allclose(clipped["a"], state["a"])
        assert norm == pytest.approx(0.1)

    def test_clip_state_invalid(self):
        with pytest.raises(ValueError):
            clip_state_by_global_norm({"a": np.ones(2)}, -1.0)

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=20),
        st.floats(0.1, 10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_clip_never_exceeds_max_norm(self, values, max_norm):
        clipped = clip_by_norm(np.asarray(values), max_norm)
        assert np.linalg.norm(clipped) <= max_norm + 1e-9


class TestAccountant:
    def test_basic_composition(self):
        acc = PrivacyAccountant()
        for _ in range(5):
            acc.record(0, 2.0)
        assert acc.epsilon_spent(0) == pytest.approx(10.0)
        assert acc.releases(0) == 5

    def test_infinite_epsilon_not_counted(self):
        acc = PrivacyAccountant()
        acc.record(0, math.inf)
        assert acc.releases(0) == 0
        assert acc.epsilon_spent(0) == 0.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            PrivacyAccountant().record(0, -1.0)

    def test_delta_and_max(self):
        acc = PrivacyAccountant()
        acc.record(0, 1.0, delta=1e-5)
        acc.record(1, 3.0)
        assert acc.delta_spent(0) == pytest.approx(1e-5)
        assert acc.max_epsilon_spent() == pytest.approx(3.0)

    def test_empty_max(self):
        assert PrivacyAccountant().max_epsilon_spent() == 0.0

    def test_summary(self):
        acc = PrivacyAccountant()
        acc.record(2, 1.5)
        summary = acc.summary()
        assert summary[2]["epsilon"] == pytest.approx(1.5)
        assert summary[2]["releases"] == 1
