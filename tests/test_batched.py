"""Batched multi-client execution: equivalence, fallback, and observability.

The contract of :mod:`repro.core.batched`: with ``FLConfig.client_batch > 1``
a cohort of same-shaped clients runs as stacked GEMM kernels and the result
is **bitwise identical** to per-client execution at float64 on the
linear/MLP path — histories, global parameters, uploads, client RNG streams,
ADMM duals/primals, everything — and within documented tolerance at float32.
``client_batch=1`` is bit-for-bit the pre-batching behaviour (it never enters
the cohort engine).  These tests sweep random cohort sizes, ragged last
cohorts, and all three algorithms with hypothesis; check the mid-run
checkpoint/resume of a batched store-backed run; and pin the fallback and
observability wiring (cohort_step spans, client_steps accounting).
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FLConfig, build_federation
from repro.core.batched import (
    compile_model_spec,
    count_client_steps,
    run_batched_updates,
    supports_batched,
)
from repro.core.models import MLP, LogisticRegression, PaperCNN
from repro.data import CohortLoader, DataLoader, TensorDataset
from repro.obs import MetricsRegistry, Tracer, use_tracer
from repro.scale import RunCheckpoint, build_virtual_federation

ALGORITHMS = ("fedavg", "iiadmm", "iceadmm")


def _datasets(num_clients, n=4, d=6, classes=3, seed=0):
    out = []
    for cid in range(num_clients):
        rng = np.random.default_rng(seed * 1_000_003 + cid)
        x = rng.standard_normal((n, d))
        y = rng.integers(0, classes, size=n)
        out.append(TensorDataset(x, y))
    return out


def _model_fn(kind="mlp", d=6, classes=3):
    def build():
        rng = np.random.default_rng(42)
        if kind == "mlp":
            return MLP(d, classes, hidden_sizes=(5,), rng=rng)
        return LogisticRegression(d, classes, rng=rng)

    return build


def _config(algorithm, dtype="float64", **kwargs):
    return FLConfig(
        algorithm=algorithm,
        num_rounds=2,
        local_steps=2,
        batch_size=2,
        lr=0.05,
        seed=0,
        dtype=dtype,
        **kwargs,
    )


def _history_key(history):
    return [(r.round, r.test_accuracy, r.test_loss, r.comm_bytes) for r in history.rounds]


def _client_state_key(runner):
    return [
        (
            c.client_id,
            c.round,
            c.vectorizer.flat_params.tobytes(),
            repr(c.rng.bit_generator.state),
            None if not hasattr(c, "dual") else (c.dual.tobytes(), c.primal.tobytes(), c._rho),
        )
        for c in runner.clients
    ]


# --------------------------------------------------------------- equivalence
class TestBatchedEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        algorithm=st.sampled_from(ALGORITHMS),
        model_kind=st.sampled_from(["mlp", "logistic"]),
        num_clients=st.integers(min_value=2, max_value=9),
        client_batch=st.integers(min_value=2, max_value=8),
    )
    def test_bitwise_at_float64(self, algorithm, model_kind, num_clients, client_batch):
        """Random cohort sizes and ragged last cohorts, all three algorithms:
        batched histories, uploads, and client state are bitwise per-client."""
        datasets = _datasets(num_clients)
        test = _datasets(1, n=20)[0]
        cfg = _config(algorithm)
        base = build_federation(cfg, _model_fn(model_kind), datasets, test_dataset=test)
        ref = base.run()
        batched = build_federation(
            replace(cfg, client_batch=client_batch), _model_fn(model_kind), datasets, test_dataset=test
        )
        got = batched.run()
        assert _history_key(got) == _history_key(ref)
        assert np.array_equal(base.server.global_params, batched.server.global_params)
        assert batched.server.global_params.tobytes() == base.server.global_params.tobytes()
        assert _client_state_key(batched) == _client_state_key(base)

    @settings(max_examples=6, deadline=None)
    @given(
        algorithm=st.sampled_from(ALGORITHMS),
        client_batch=st.integers(min_value=2, max_value=6),
    )
    def test_float32_within_tolerance(self, algorithm, client_batch):
        """Documented float32 contract: batched matches per-client within
        tolerance (on this BLAS the stacked lanes are in fact bit-identical,
        but only the tolerance is guaranteed across backends)."""
        datasets = _datasets(7)
        test = _datasets(1, n=20)[0]
        cfg = _config(algorithm, dtype="float32")
        base = build_federation(cfg, _model_fn(), datasets, test_dataset=test)
        base.run()
        batched = build_federation(
            replace(cfg, client_batch=client_batch), _model_fn(), datasets, test_dataset=test
        )
        batched.run()
        np.testing.assert_allclose(
            batched.server.global_params, base.server.global_params, rtol=1e-5, atol=1e-6
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_store_backed_waves_run_as_cohorts(self, algorithm):
        """A virtual (store-backed) batched run is bitwise the eager
        per-client run, wave boundaries and all."""
        datasets = _datasets(11)
        test = _datasets(1, n=20)[0]
        cfg = _config(algorithm)
        eager = build_federation(cfg, _model_fn(), datasets, test_dataset=test)
        ref = eager.run()
        virtual = build_virtual_federation(
            replace(cfg, client_batch=4), _model_fn(), datasets, live_cap=5, test_dataset=test
        )
        got = virtual.run()
        assert _history_key(got) == _history_key(ref)
        assert np.array_equal(eager.server.global_params, virtual.server.global_params)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_mid_run_checkpoint_resume_stays_bitwise(self, algorithm):
        """Checkpoint a batched store-backed run mid-way, rebuild, restore,
        continue batched — bitwise the uninterrupted batched run (which is
        itself bitwise the per-client run)."""
        datasets = _datasets(9)
        test = _datasets(1, n=20)[0]
        cfg = replace(_config(algorithm), num_rounds=4, client_batch=3)

        full = build_virtual_federation(cfg, _model_fn(), datasets, live_cap=6, test_dataset=test)
        reference = full.run(4)

        first = build_virtual_federation(cfg, _model_fn(), datasets, live_cap=6, test_dataset=test)
        first.run(2)
        blob = RunCheckpoint.save(first).to_bytes()

        resumed = build_virtual_federation(cfg, _model_fn(), datasets, live_cap=6, test_dataset=test)
        RunCheckpoint.from_bytes(blob).restore(resumed)
        history = resumed.run(2)

        assert _history_key(history) == _history_key(reference)
        assert np.array_equal(full.server.global_params, resumed.server.global_params)

    def test_client_batch_one_never_enters_the_cohort_engine(self, monkeypatch):
        """client_batch=1 (the default) must be bit-for-bit the pre-PR path:
        the cohort engine is not even consulted."""
        import repro.core.runner as runner_mod

        def boom(*args, **kwargs):  # pragma: no cover - fails the test if hit
            raise AssertionError("run_batched_updates called with client_batch=1")

        monkeypatch.setattr(runner_mod, "run_batched_updates", boom)
        datasets = _datasets(4)
        runner = build_federation(_config("fedavg"), _model_fn(), datasets)
        runner.run(1)
        assert runner.client_steps == sum(count_client_steps(c) for c in runner.clients)


# ------------------------------------------------------------------ fallback
class TestFallback:
    def test_cnn_models_fall_back_per_client(self):
        """No batched kernel for conv models: the spec fails to compile and
        the run still matches the per-client result exactly."""
        rng = np.random.default_rng(0)
        datasets = []
        for cid in range(3):
            crng = np.random.default_rng(cid)
            x = crng.standard_normal((4, 1, 8, 8))
            y = crng.integers(0, 3, size=4)
            datasets.append(TensorDataset(x, y))

        def cnn_fn():
            return PaperCNN(1, 3, image_size=(8, 8), hidden=4, conv_channels=(2, 2),
                            rng=np.random.default_rng(42))

        cfg = _config("fedavg")
        base = build_federation(cfg, cnn_fn, datasets)
        base.run(1)
        batched = build_federation(replace(cfg, client_batch=4), cnn_fn, datasets)
        batched.run(1)
        assert compile_model_spec(batched.clients[0]) is None
        assert np.array_equal(base.server.global_params, batched.server.global_params)

    def test_privacy_disables_batching(self):
        datasets = _datasets(3)
        cfg = _config("iiadmm").with_privacy(1.0)
        runner = build_federation(replace(cfg, client_batch=4), _model_fn(), datasets)
        assert not supports_batched(runner.clients[0])
        # DP noise draws come from each client's own RNG stream, so the
        # fallback path must still match a client_batch=1 run bitwise.
        base = build_federation(cfg, _model_fn(), datasets)
        base.run(1)
        runner.run(1)
        assert np.array_equal(base.server.global_params, runner.server.global_params)

    def test_lossy_codec_disables_batching(self):
        datasets = _datasets(4)
        cfg = replace(_config("iiadmm", codec="fp16"), client_batch=4)
        base = build_federation(_config("iiadmm", codec="fp16"), _model_fn(), datasets)
        base.run(1)
        runner = build_federation(cfg, _model_fn(), datasets)
        runner.run(1)
        assert np.array_equal(base.server.global_params, runner.server.global_params)

    def test_mixed_population_splits_cohort_and_leftover(self):
        """Clients with unequal dataset sizes group into separate cohorts;
        singleton groups ride the per-client path — results stay bitwise."""
        datasets = _datasets(4, n=4) + _datasets(3, n=6, seed=1) + _datasets(1, n=5, seed=2)
        cfg = _config("fedavg")
        base = build_federation(cfg, _model_fn(), datasets)
        base.run()
        batched = build_federation(replace(cfg, client_batch=8), _model_fn(), datasets)
        batched.run()
        assert np.array_equal(base.server.global_params, batched.server.global_params)
        assert _client_state_key(batched) == _client_state_key(base)


# -------------------------------------------------------------- cohort loader
class TestCohortLoader:
    def test_blocks_match_per_client_iteration_and_rng(self):
        """Every lane of every block equals the per-client batch, and the
        underlying RNGs end in the same state as plain iteration."""
        datasets = _datasets(3, n=7, d=4)
        rngs_a = [np.random.default_rng(100 + i) for i in range(3)]
        rngs_b = [np.random.default_rng(100 + i) for i in range(3)]
        loaders_a = [DataLoader(d, batch_size=3, shuffle=True, rng=r) for d, r in zip(datasets, rngs_a)]
        loaders_b = [DataLoader(d, batch_size=3, shuffle=True, rng=r) for d, r in zip(datasets, rngs_b)]
        cohort = CohortLoader(loaders_b)
        for _epoch in range(2):
            per_client = [list(ld) for ld in loaders_a]
            cohort.epoch()
            for step, (xb, yb) in enumerate(cohort.batches()):
                for lane in range(3):
                    ex, ey = per_client[lane][step]
                    assert np.array_equal(xb[lane], ex)
                    assert np.array_equal(yb[lane], ey)
        for ra, rb in zip(rngs_a, rngs_b):
            assert ra.bit_generator.state == rb.bit_generator.state

    def test_rejects_mismatched_lanes(self):
        d1 = _datasets(1, n=4)[0]
        d2 = _datasets(1, n=6, seed=1)[0]
        l1 = DataLoader(d1, batch_size=2, shuffle=True, rng=np.random.default_rng(0))
        l2 = DataLoader(d2, batch_size=2, shuffle=True, rng=np.random.default_rng(1))
        with pytest.raises(ValueError):
            CohortLoader([l1, l2])
        with pytest.raises(ValueError):
            CohortLoader([])


# ------------------------------------------------------------- observability
class TestObservability:
    def test_cohort_step_spans_and_steps_accounting(self):
        datasets = _datasets(6)
        cfg = replace(_config("fedavg"), client_batch=3)
        runner = build_federation(cfg, _model_fn(), datasets)
        tracer = Tracer()
        with use_tracer(tracer):
            runner.run(1)
        spans = [r for r in tracer.records if r.get("name") == "cohort_step"]
        assert spans, "batched execution must emit cohort_step spans"
        assert sum(r["steps"] for r in spans) == runner.client_steps
        assert all(r["cohort"] == len(r["clients"]) for r in spans)
        assert {cid for r in spans for cid in r["clients"]} == set(range(6))
        assert runner.history.rounds[0].client_steps == runner.client_steps

    def test_client_steps_per_sec_gauge(self):
        datasets = _datasets(4)
        runner = build_federation(replace(_config("iiadmm"), client_batch=2), _model_fn(), datasets)
        runner.run(1)
        registry = MetricsRegistry()
        registry.absorb_runner(runner)
        snapshot = registry.snapshot()
        gauges = snapshot["gauges"]
        key = next(k for k in gauges if "client_steps_per_sec" in k)
        expected = runner.client_steps / runner.phase_seconds["local_update"]
        assert gauges[key] == pytest.approx(expected)

    def test_format_history_steps_column(self):
        from repro.harness.reporting import format_history

        datasets = _datasets(4)
        runner = build_federation(replace(_config("fedavg"), client_batch=2), _model_fn(), datasets)
        history = runner.run(1)
        table = format_history(history)
        assert "steps/s" in table
        # json form carries the raw per-round count for machine consumers
        import json

        row = json.loads(format_history(history, fmt="json").splitlines()[0])
        assert row["client_steps"] == runner.client_steps
