"""Tests for FedAvg, ICEADMM, and IIADMM servers/clients and the runner."""

import math

import numpy as np
import pytest

from repro.core import (
    FLConfig,
    FedAvgClient,
    FedAvgServer,
    ICEADMMClient,
    ICEADMMServer,
    IIADMMClient,
    IIADMMServer,
    MLP,
    FederatedRunner,
    build_federation,
)
from repro.core.base import DUAL_KEY, GLOBAL_KEY, PRIMAL_KEY
from repro.comm import GRPCSimCommunicator, MPISimCommunicator, SerialCommunicator, state_dict_nbytes
from repro.core.metrics import Evaluator
from repro.data import TensorDataset, iid_partition
from repro.privacy import PrivacyAccountant


def make_dataset(n=120, dim=8, classes=3, seed=0, separation=3.0, centers=None):
    """Linearly separable-ish classification data."""
    rng = np.random.default_rng(seed)
    if centers is None:
        centers = rng.standard_normal((classes, dim)) * separation
    y = rng.integers(0, classes, n)
    x = centers[y] + rng.standard_normal((n, dim))
    return TensorDataset(x, y)


def model_fn(seed=7, dim=8, classes=3):
    return MLP(dim, classes, hidden_sizes=(16,), rng=np.random.default_rng(seed))


def make_clients_and_test(num_clients=3, seed=0):
    centers = np.random.default_rng(seed + 555).standard_normal((3, 8)) * 3.0
    train = make_dataset(150, seed=seed, centers=centers)
    test = make_dataset(60, seed=seed + 100, centers=centers)
    clients = iid_partition(train, num_clients, rng=np.random.default_rng(seed))
    return clients, test


def base_config(algorithm, **kwargs):
    defaults = dict(num_rounds=3, local_steps=2, batch_size=32, lr=0.05, rho=2.0, zeta=2.0, seed=0)
    defaults.update(kwargs)
    return FLConfig(algorithm=algorithm, **defaults)


class TestFedAvg:
    def test_server_uniform_average(self):
        cfg = base_config("fedavg", weighted_aggregation=False)
        server = FedAvgServer(model_fn(), cfg, num_clients=2, client_sample_counts=[10, 10])
        dim = server.vectorizer.dim
        payloads = {0: {PRIMAL_KEY: np.zeros(dim)}, 1: {PRIMAL_KEY: np.ones(dim)}}
        server.update(payloads)
        np.testing.assert_allclose(server.global_params, 0.5)

    def test_server_weighted_average(self):
        cfg = base_config("fedavg", weighted_aggregation=True)
        server = FedAvgServer(model_fn(), cfg, num_clients=2, client_sample_counts=[10, 30])
        dim = server.vectorizer.dim
        payloads = {0: {PRIMAL_KEY: np.zeros(dim)}, 1: {PRIMAL_KEY: np.ones(dim)}}
        server.update(payloads)
        np.testing.assert_allclose(server.global_params, 0.75)

    def test_server_empty_payloads(self):
        server = FedAvgServer(model_fn(), base_config("fedavg"), num_clients=1)
        with pytest.raises(ValueError):
            server.update({})

    def test_server_syncs_model(self):
        cfg = base_config("fedavg", weighted_aggregation=False)
        server = FedAvgServer(model_fn(), cfg, num_clients=1, client_sample_counts=[5])
        dim = server.vectorizer.dim
        server.update({0: {PRIMAL_KEY: np.full(dim, 0.25)}})
        np.testing.assert_allclose(server.vectorizer.to_vector(), 0.25)

    def test_client_update_moves_parameters(self):
        clients, _ = make_clients_and_test()
        cfg = base_config("fedavg")
        client = FedAvgClient(0, model_fn(), clients[0], cfg)
        w = client.vectorizer.to_vector()
        payload = client.update({GLOBAL_KEY: w})
        assert PRIMAL_KEY in payload and DUAL_KEY not in payload
        assert np.linalg.norm(payload[PRIMAL_KEY] - w) > 0

    def test_client_reduces_local_loss(self):
        clients, _ = make_clients_and_test()
        cfg = base_config("fedavg", local_steps=5)
        client = FedAvgClient(0, model_fn(), clients[0], cfg)
        w = client.vectorizer.to_vector()
        before = client.local_loss(w)
        z = client.update({GLOBAL_KEY: w})[PRIMAL_KEY]
        assert client.local_loss(z) < before

    def test_dp_noise_applied(self):
        clients, _ = make_clients_and_test()
        cfg_np = base_config("fedavg", momentum=0.0)
        cfg_dp = cfg_np.with_privacy(3.0)
        w = None
        outs = []
        for cfg in (cfg_np, cfg_dp):
            client = FedAvgClient(0, model_fn(), clients[0], cfg, rng=np.random.default_rng(0))
            w = client.vectorizer.to_vector()
            outs.append(client.update({GLOBAL_KEY: w})[PRIMAL_KEY])
        assert not np.allclose(outs[0], outs[1])


class TestIIADMM:
    def test_client_payload_contains_only_primal(self):
        clients, _ = make_clients_and_test()
        client = IIADMMClient(0, model_fn(), clients[0], base_config("iiadmm"))
        payload = client.update({GLOBAL_KEY: client.vectorizer.to_vector()})
        assert set(payload) == {PRIMAL_KEY}

    def test_server_and_client_duals_stay_identical(self):
        """The duplicated dual updates (Algorithm 1 lines 6 and 21) must agree."""
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config("iiadmm", num_rounds=3)
        runner = build_federation(cfg, model_fn, clients, test)
        runner.run(3)
        server = runner.server
        for client in runner.clients:
            np.testing.assert_allclose(server.duals[client.client_id], client.dual, atol=1e-10)

    def test_duals_identical_under_privacy_too(self):
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config("iiadmm", num_rounds=2).with_privacy(5.0)
        runner = build_federation(cfg, model_fn, clients, test)
        runner.run(2)
        for client in runner.clients:
            np.testing.assert_allclose(runner.server.duals[client.client_id], client.dual, atol=1e-10)

    def test_global_update_formula(self):
        """w = (1/P) Σ (z_p − λ_p/ρ) with freshly updated duals."""
        cfg = base_config("iiadmm", rho=2.0)
        server = IIADMMServer(model_fn(), cfg, num_clients=2, client_sample_counts=[5, 5])
        dim = server.vectorizer.dim
        w_old = server.global_params.copy()
        z0, z1 = np.full(dim, 0.5), np.full(dim, -0.5)
        server.update({0: {PRIMAL_KEY: z0}, 1: {PRIMAL_KEY: z1}})
        lam0 = 2.0 * (w_old - z0)
        lam1 = 2.0 * (w_old - z1)
        expected = 0.5 * ((z0 - lam0 / 2.0) + (z1 - lam1 / 2.0))
        np.testing.assert_allclose(server.global_params, expected)

    def test_consensus_residual_decreases(self):
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config("iiadmm", num_rounds=6, local_steps=3)
        runner = build_federation(cfg, model_fn, clients, test)
        residuals = []
        for t in range(6):
            runner.run_round(t)
            residuals.append(runner.server.consensus_residual())
        assert residuals[-1] < residuals[0]

    def test_adaptive_rho_growth(self):
        clients, _ = make_clients_and_test()
        cfg = base_config("iiadmm", adaptive_rho=True, rho_growth=2.0, rho=1.0)
        client = IIADMMClient(0, model_fn(), clients[0], cfg)
        client.update({GLOBAL_KEY: client.vectorizer.to_vector()})
        assert client.rho == pytest.approx(2.0)
        client.update({GLOBAL_KEY: client.vectorizer.to_vector()})
        assert client.rho == pytest.approx(4.0)

    def test_fedavg_is_special_case_of_iadmm(self):
        """Section III-A: FedAvg ≡ IADMM with λ=0, ζ=0, ρ=1/η (one local SGD pass)."""
        clients, _ = make_clients_and_test(num_clients=1)
        eta = 0.05
        n = len(clients[0])
        cfg_fed = base_config("fedavg", lr=eta, momentum=0.0, local_steps=1, batch_size=n)
        cfg_admm = base_config("iiadmm", rho=1.0 / eta, zeta=0.0, local_steps=1, batch_size=n)

        fed = FedAvgClient(0, model_fn(), clients[0], cfg_fed, rng=np.random.default_rng(0))
        admm = IIADMMClient(0, model_fn(), clients[0], cfg_admm, rng=np.random.default_rng(0))
        w = fed.vectorizer.to_vector()
        z_fed = fed.update({GLOBAL_KEY: w.copy()})[PRIMAL_KEY]
        z_admm = admm.update({GLOBAL_KEY: w.copy()})[PRIMAL_KEY]
        np.testing.assert_allclose(z_fed, z_admm, atol=1e-10)


class TestICEADMM:
    def test_client_payload_contains_primal_and_dual(self):
        clients, _ = make_clients_and_test()
        client = ICEADMMClient(0, model_fn(), clients[0], base_config("iceadmm"))
        payload = client.update({GLOBAL_KEY: client.vectorizer.to_vector()})
        assert set(payload) == {PRIMAL_KEY, DUAL_KEY}

    def test_iceadmm_payload_twice_the_bytes_of_iiadmm(self):
        """Section IV-D: ICEADMM communicates both primal and dual each round."""
        clients, _ = make_clients_and_test()
        ice = ICEADMMClient(0, model_fn(), clients[0], base_config("iceadmm"))
        ii = IIADMMClient(0, model_fn(), clients[0], base_config("iiadmm"))
        w = ice.vectorizer.to_vector()
        ice_bytes = state_dict_nbytes(ice.update({GLOBAL_KEY: w.copy()}))
        ii_bytes = state_dict_nbytes(ii.update({GLOBAL_KEY: w.copy()}))
        assert ice_bytes == 2 * ii_bytes

    def test_server_global_update_formula(self):
        cfg = base_config("iceadmm", rho=4.0)
        server = ICEADMMServer(model_fn(), cfg, num_clients=2, client_sample_counts=[5, 5])
        dim = server.vectorizer.dim
        z0, z1 = np.full(dim, 1.0), np.full(dim, 3.0)
        l0, l1 = np.full(dim, 4.0), np.full(dim, -4.0)
        server.update({0: {PRIMAL_KEY: z0, DUAL_KEY: l0}, 1: {PRIMAL_KEY: z1, DUAL_KEY: l1}})
        expected = 0.5 * ((1.0 - 1.0) + (3.0 + 1.0))
        np.testing.assert_allclose(server.global_params, expected)

    def test_dual_updates_locally_accumulate(self):
        clients, _ = make_clients_and_test()
        client = ICEADMMClient(0, model_fn(), clients[0], base_config("iceadmm"))
        w = client.vectorizer.to_vector()
        client.update({GLOBAL_KEY: w.copy()})
        assert np.linalg.norm(client.dual) > 0

    def test_empty_payloads(self):
        server = ICEADMMServer(model_fn(), base_config("iceadmm"), num_clients=1)
        with pytest.raises(ValueError):
            server.update({})


class TestRunnerAndIntegration:
    def test_runner_validation(self):
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config("fedavg")
        runner = build_federation(cfg, model_fn, clients, test)
        with pytest.raises(ValueError):
            FederatedRunner(runner.server, [])
        with pytest.raises(ValueError):
            FederatedRunner(runner.server, runner.clients[:1])

    def test_history_and_metrics_recorded(self):
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config("fedavg", num_rounds=2)
        runner = build_federation(cfg, model_fn, clients, test)
        history = runner.run()
        assert len(history) == 2
        assert history.final_accuracy is not None
        assert history.best_accuracy >= history.accuracies.min()
        assert history.total_comm_bytes() > 0
        assert all(r.comm_seconds == 0.0 for r in history.rounds)  # serial communicator

    def test_callback_invoked(self):
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config("fedavg", num_rounds=2)
        runner = build_federation(cfg, model_fn, clients, test)
        seen = []
        runner.run(callback=lambda r: seen.append(r.round))
        assert seen == [0, 1]

    def test_no_evaluator_yields_none_accuracy(self):
        clients, _ = make_clients_and_test(num_clients=2)
        cfg = base_config("fedavg", num_rounds=1)
        runner = build_federation(cfg, model_fn, clients, test_dataset=None)
        history = runner.run()
        assert history.rounds[0].test_accuracy is None
        assert history.final_accuracy is None

    @pytest.mark.parametrize("algorithm", ["fedavg", "iiadmm", "iceadmm"])
    def test_all_algorithms_learn(self, algorithm):
        clients, test = make_clients_and_test(num_clients=3, seed=2)
        cfg = base_config(algorithm, num_rounds=5, local_steps=3)
        runner = build_federation(cfg, model_fn, clients, test)
        history = runner.run()
        ev = Evaluator(test)
        untrained_acc, _ = ev(model_fn())
        assert history.final_accuracy > untrained_acc + 0.15
        assert history.final_accuracy > 0.6

    def test_initial_models_synchronised(self):
        clients, test = make_clients_and_test(num_clients=3)
        cfg = base_config("iiadmm")
        runner = build_federation(cfg, lambda: model_fn(seed=None if False else np.random.randint(0, 10**6)), clients, test)
        ref = runner.server.vectorizer.to_vector()
        for client in runner.clients:
            np.testing.assert_allclose(client.vectorizer.to_vector(), ref)

    def test_privacy_accountant_tracks_rounds(self):
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config("fedavg", num_rounds=3).with_privacy(2.0)
        runner = build_federation(cfg, model_fn, clients, test)
        runner.run()
        assert runner.accountant.releases(0) == 3
        assert runner.accountant.epsilon_spent(0) == pytest.approx(6.0)

    def test_non_private_run_does_not_consume_budget(self):
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config("fedavg", num_rounds=2)
        runner = build_federation(cfg, model_fn, clients, test)
        runner.run()
        assert runner.accountant.max_epsilon_spent() == 0.0

    def test_dp_degrades_accuracy(self):
        clients, test = make_clients_and_test(num_clients=3, seed=3)

        def final_acc(eps):
            cfg = base_config("iiadmm", num_rounds=4, local_steps=3, seed=1).with_privacy(eps)
            return build_federation(cfg, model_fn, clients, test).run().final_accuracy

        assert final_acc(math.inf) > final_acc(0.5)

    def test_runner_with_mpi_communicator_records_time(self):
        clients, test = make_clients_and_test(num_clients=3)
        cfg = base_config("fedavg", num_rounds=2)
        comm = MPISimCommunicator(num_processes=3)
        runner = build_federation(cfg, model_fn, clients, test, communicator=comm)
        history = runner.run()
        assert all(r.comm_seconds > 0 for r in history.rounds)

    def test_runner_with_grpc_communicator_slower_than_mpi(self):
        clients, test = make_clients_and_test(num_clients=3)
        cfg = base_config("fedavg", num_rounds=2)
        mpi = build_federation(cfg, model_fn, clients, test, communicator=MPISimCommunicator(3)).run()
        grpc = build_federation(
            cfg, model_fn, clients, test, communicator=GRPCSimCommunicator(rng=np.random.default_rng(0))
        ).run()
        assert sum(r.comm_seconds for r in grpc.rounds) > sum(r.comm_seconds for r in mpi.rounds)

    def test_deterministic_given_seed(self):
        clients, test = make_clients_and_test(num_clients=2)

        def run():
            cfg = base_config("fedavg", num_rounds=2, seed=5)
            return build_federation(cfg, model_fn, clients, test, seed=5).run().final_accuracy

        assert run() == run()
