"""Fault-injection layer tests (ISSUE 6).

Covers the deterministic chaos engine below the runners:

* keyed-RNG fault plans — decisions are pure functions of (seed, key),
  order-free, with validated rates and a reproducible ``chaos`` schedule;
* retry policy — capped exponential backoff with deterministic jitter;
* the communicator seam — drops/timeouts/corruptions/crashes through
  ``_transfer``: per-attempt records, backoff records, dead letters,
  checksum-rejected corruption, and the fault-free path staying bitwise;
* degraded rounds — flat sync/virtual/async runs finalize with the
  surviving cohort and report ``failed_clients``/``retries``;
* the privacy accountant charging once per accepted ingest (dedupe keys,
  state round-trip, legacy format);
* the mid-wave hier checkpoint guard.
"""

import numpy as np
import pytest

from repro.comm import DeadLetter, SerialCommunicator
from repro.comm.codecs import resolve_codec
from repro.core import FLConfig, MLP, build_federation
from repro.core.runner import client_endpoint
from repro.data import TensorDataset, iid_partition
from repro.faults import FaultInjector, FaultPlan, FaultStats, RetryPolicy, keyed_rng
from repro.privacy import PrivacyAccountant, dispatch_fingerprint
from repro.scale import build_virtual_federation


# ----------------------------------------------------------------- fixtures
def make_dataset(n=120, dim=8, classes=3, seed=0, centers=None):
    rng = np.random.default_rng(seed)
    if centers is None:
        centers = rng.standard_normal((classes, dim)) * 3.0
    y = rng.integers(0, classes, n)
    return TensorDataset(centers[y] + rng.standard_normal((n, dim)), y)


def make_clients_and_test(num_clients=6, seed=0):
    centers = np.random.default_rng(seed + 555).standard_normal((3, 8)) * 3.0
    train = make_dataset(180, seed=seed, centers=centers)
    test = make_dataset(45, seed=seed + 100, centers=centers)
    clients = iid_partition(train, num_clients, rng=np.random.default_rng(seed))
    return clients, test


def model_fn():
    return MLP(8, 3, hidden_sizes=(12,), rng=np.random.default_rng(7))


def base_config(algorithm="fedavg", **kwargs):
    defaults = dict(num_rounds=3, local_steps=2, batch_size=32, lr=0.05, rho=2.0, zeta=2.0, seed=0)
    defaults.update(kwargs)
    return FLConfig(algorithm=algorithm, **defaults)


def history_key(history):
    return [
        (r.round, r.test_accuracy, r.test_loss, r.participating_clients)
        for r in history.rounds
    ]


# ================================================================ fault plan
class TestFaultPlan:
    def test_keyed_rng_is_a_pure_function_of_its_key(self):
        a = keyed_rng(3, "link", 0, "client:1").random(4)
        b = keyed_rng(3, "link", 0, "client:1").random(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, keyed_rng(3, "link", 0, "client:2").random(4))
        assert not np.array_equal(a, keyed_rng(4, "link", 0, "client:1").random(4))

    def test_link_fault_is_order_free(self):
        plan = FaultPlan(seed=11, drop_prob=0.3, timeout_prob=0.3, corrupt_prob=0.3)
        keys = [(r, f"client:{c}", op, a) for r in range(3) for c in range(4)
                for op in ("send_local", "recv_global") for a in range(2)]
        forward = [plan.link_fault(*k) for k in keys]
        backward = [plan.link_fault(*k) for k in reversed(keys)]
        assert forward == list(reversed(backward))
        # and at these rates, every kind of fault actually occurs
        assert {"drop", "timeout", "corrupt"} <= set(f for f in forward if f)

    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=1)
        assert plan.link_fault(0, "client:0", "send_local", 0) is None
        assert not plan.client_crashed(0, 0)
        assert not plan.any_link_faults and not plan.any_client_crashes

    def test_rates_are_validated(self):
        with pytest.raises(ValueError, match="must be in"):
            FaultPlan(drop_prob=1.5)
        with pytest.raises(ValueError, match="must not exceed 1"):
            FaultPlan(drop_prob=0.5, timeout_prob=0.4, corrupt_prob=0.2)

    def test_explicit_client_crashes_merge_with_probabilistic(self):
        plan = FaultPlan(seed=0, client_crashes={2: (5, 7)})
        assert plan.client_crashed(5, 2) and plan.client_crashed(7, 2)
        assert not plan.client_crashed(5, 1)
        probabilistic = FaultPlan(seed=0, client_crash_prob=0.5)
        draws = [probabilistic.client_crashed(c, 0) for c in range(40)]
        assert any(draws) and not all(draws)
        assert draws == [probabilistic.client_crashed(c, 0) for c in range(40)]

    def test_chaos_schedule_is_reproducible_and_in_range(self):
        plan = FaultPlan.chaos(9, num_edges=4, kills=3, max_event_count=100, min_event_count=10)
        again = FaultPlan.chaos(9, num_edges=4, kills=3, max_event_count=100, min_event_count=10)
        assert plan.edge_kills == again.edge_kills
        counts = [c for c, _ in plan.edge_kills]
        assert counts == sorted(counts) and all(10 <= c <= 100 for c in counts)
        assert all(0 <= e < 4 for _, e in plan.edge_kills)
        with pytest.raises(ValueError, match="min_event_count"):
            FaultPlan.chaos(0, num_edges=2, kills=1, max_event_count=5, min_event_count=9)

    def test_edge_kill_event_counts_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            FaultPlan(edge_kills=((0, 1),))


# ============================================================== retry policy
class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.35, jitter=0.0)
        delays = [policy.backoff_delay(k) for k in range(4)]
        assert delays == [0.1, 0.2, 0.35, 0.35]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=1.0, backoff_max=1.0, jitter=0.5, seed=3)
        d1 = policy.backoff_delay(0, 1, "client:2", "send_local")
        d2 = policy.backoff_delay(0, 1, "client:2", "send_local")
        assert d1 == d2
        assert 0.1 <= d1 <= 0.1 * 1.5
        assert d1 != policy.backoff_delay(0, 1, "client:3", "send_local")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


# ====================================================== checksum / corruption
class TestCorruption:
    def _packet(self):
        pipeline = resolve_codec("identity")
        return pipeline.encode_state({"w": np.arange(6, dtype=np.float32)})

    def test_corrupt_packet_fails_checksum_and_preserves_original(self):
        packet = self._packet()
        before = packet.checksum()
        injector = FaultInjector(FaultPlan())
        corrupted = injector.corrupt_packet(packet)
        assert corrupted.checksum() != before
        assert packet.checksum() == before  # the original is untouched

    def test_checksum_covers_payload_bytes(self):
        a = self._packet()
        b = resolve_codec("identity").encode_state({"w": np.arange(6, dtype=np.float32)})
        assert a.checksum() == b.checksum()


# =========================================================== communicator seam
class TestCommSeam:
    def _comm(self, plan, **retry_kwargs):
        retry = RetryPolicy(seed=plan.seed, **retry_kwargs) if retry_kwargs else None
        return SerialCommunicator().install_faults(plan, retry=retry)

    def test_fault_free_armed_path_delivers_everything(self):
        comm = self._comm(FaultPlan(seed=0))
        payload = {"w": np.ones(3)}
        got = comm._transfer(0, "client:1", "send_local", payload, 24, lambda: 0.5)
        assert got is payload
        assert comm.log.records[-1].attempt == 0 and comm.log.records[-1].fault is None
        assert comm.log.failed_attempts() == 0 and not comm.log.dead_letters

    def test_drops_retry_then_dead_letter(self):
        plan = FaultPlan(seed=0, drop_prob=1.0)
        comm = self._comm(plan, max_attempts=3, timeout=0.25, jitter=0.0)
        got = comm._transfer(1, "client:2", "send_local", {"w": np.ones(2)}, 16, lambda: 0.1)
        assert got is None
        stats = comm.injector.stats
        assert stats.drops == 3 and stats.retries == 2 and stats.dead_letters == 1
        faults = [r for r in comm.log.records if r.fault == "drop"]
        assert len(faults) == 3 and all(r.seconds == 0.25 and r.nbytes == 0 for r in faults)
        backoffs = [r for r in comm.log.records if r.op == "backoff"]
        assert len(backoffs) == 2
        assert comm.log.dead_letters == [DeadLetter(1, "client:2", "send_local", 16, 3, "max_attempts")]
        assert comm.log.failed_attempts() == 3

    def test_corruption_is_rejected_by_checksum_and_retried(self):
        # Fault only on attempt 0: the retry succeeds and delivers intact bytes.
        plan = FaultPlan(seed=4, corrupt_prob=0.0)
        comm = self._comm(plan)

        class OneShotInjector(FaultInjector):
            def transfer_fault(self, round_idx, endpoint, op, attempt):
                return "corrupt" if attempt == 0 else None

        comm.injector = OneShotInjector(plan)
        comm.retry = comm.injector.retry
        packet = resolve_codec("identity").encode_state({"w": np.arange(4, dtype=np.float32)})
        got = comm._transfer(0, "client:0", "send_local", packet, packet.nbytes, lambda: 0.2)
        assert got is packet and got.checksum() == packet.checksum()
        corrupt_records = [r for r in comm.log.records if r.fault == "corrupt"]
        # corrupted bytes crossed the wire: charged wire time and full size
        assert len(corrupt_records) == 1 and corrupt_records[0].nbytes == packet.nbytes
        assert comm.injector.stats.corruptions == 1 and comm.injector.stats.retries == 1

    def test_sender_crash_is_unretryable(self):
        plan = FaultPlan(seed=0, client_crashes={0: (3,)})
        comm = self._comm(plan)
        got = comm._transfer(0, client_endpoint(3), "send_local", {"w": np.ones(1)}, 8, lambda: 0.1)
        assert got is None
        assert comm.injector.stats.client_crashes == 1 and comm.injector.stats.retries == 0
        assert comm.log.dead_letters[0].reason == "crash"

    def test_plan_is_wrapped_in_fresh_injector(self):
        comm = self._comm(FaultPlan(seed=0))
        assert isinstance(comm.injector, FaultInjector)
        assert isinstance(comm.injector.stats, FaultStats)
        assert comm.retry is comm.injector.retry


# ============================================================ degraded rounds
class TestDegradedRounds:
    def test_sync_round_excludes_crashed_clients(self):
        clients, test = make_clients_and_test()
        runner = build_federation(base_config("fedavg"), model_fn, clients, test)
        runner.communicator.install_faults(FaultPlan(seed=0, client_crashes={1: (2, 4)}))
        history = runner.run(3)
        assert len(history) == 3
        r0, r1, r2 = history.rounds
        assert r0.failed_clients == () and r2.failed_clients == ()
        assert r1.failed_clients == (2, 4)
        assert set(r1.participating_clients) == {0, 1, 3, 5}
        assert 2 not in r1.participating_clients
        letters = runner.communicator.log.dead_letters
        assert {(d.endpoint, d.reason) for d in letters} == {
            (client_endpoint(2), "crash"),
            (client_endpoint(4), "crash"),
        }

    def test_fault_free_armed_run_is_bitwise_the_unarmed_run(self):
        clients, test = make_clients_and_test()
        plain = build_federation(base_config("iiadmm"), model_fn, clients, test)
        plain_history = plain.run(3)
        armed = build_federation(base_config("iiadmm"), model_fn, clients, test)
        armed.communicator.install_faults(FaultPlan(seed=0))
        armed_history = armed.run(3)
        assert history_key(plain_history) == history_key(armed_history)
        assert np.array_equal(plain.server.global_params, armed.server.global_params)
        # the armed run reports zero fault activity, not None
        assert all(r.failed_clients == () and r.retries == 0 for r in armed_history.rounds)
        assert all(r.failed_clients is None and r.retries is None for r in plain_history.rounds)

    def test_virtual_runner_degrades_identically_to_eager(self):
        plan = FaultPlan(seed=5, client_crash_prob=0.25)
        clients, test = make_clients_and_test()
        eager = build_federation(base_config("fedavg"), model_fn, clients, test)
        eager.communicator.install_faults(plan)
        eager_history = eager.run(3)
        virtual = build_virtual_federation(
            base_config("fedavg"), model_fn, clients, live_cap=2, test_dataset=test
        )
        virtual.communicator.install_faults(plan)
        virtual_history = virtual.run(3)
        assert history_key(eager_history) == history_key(virtual_history)
        assert [r.failed_clients for r in eager_history.rounds] == [
            r.failed_clients for r in virtual_history.rounds
        ]
        assert np.array_equal(eager.server.global_params, virtual.server.global_params)
        assert any(r.failed_clients for r in eager_history.rounds)

    def test_async_fedbuff_survives_client_crashes(self):
        from repro.asyncfl import FedBuffStrategy, build_async_federation

        clients, test = make_clients_and_test()
        runner = build_async_federation(
            base_config("fedavg"), model_fn, clients, test,
            strategy=FedBuffStrategy(buffer_size=3),
        )
        runner.enable_faults(FaultPlan(seed=2, client_crash_prob=0.3))
        history = runner.run(4)
        assert len(history) == 4
        assert runner.injector.stats.client_crashes > 0
        assert all(r.failed_clients is not None and r.retries is not None for r in history.rounds)
        assert any(r.failed_clients for r in history.rounds)

    def test_async_round_based_rejects_client_crashes(self):
        from repro.asyncfl import SyncRoundStrategy, build_async_federation

        clients, test = make_clients_and_test()
        runner = build_async_federation(
            base_config("fedavg"), model_fn, clients, test, strategy=SyncRoundStrategy()
        )
        with pytest.raises(ValueError, match="round-based"):
            runner.enable_faults(FaultPlan(seed=0, client_crash_prob=0.1))

    def test_sync_iiadmm_duals_freeze_for_crashed_clients(self):
        clients, test = make_clients_and_test()
        runner = build_federation(base_config("iiadmm"), model_fn, clients, test)
        runner.communicator.install_faults(FaultPlan(seed=0, client_crashes={1: (0,)}))
        runner.run(1)
        before = {cid: d.copy() for cid, d in runner.server.duals.items()}
        runner.run(1)  # round 1: client 0 crashes
        assert np.array_equal(runner.server.duals[0], before[0])
        survivors_moved = [
            not np.array_equal(runner.server.duals[c], before[c]) for c in range(1, 6)
        ]
        assert all(survivors_moved)


# ========================================================== privacy accountant
class TestAccountantDedupe:
    def test_charges_once_per_dispatch_key(self):
        acc = PrivacyAccountant()
        key = dispatch_fingerprint(3, np.arange(4, dtype=np.float64))
        assert acc.record(1, 0.5, key=key) is True
        assert acc.record(1, 0.5, key=key) is False  # replayed ingest: no charge
        assert acc.epsilon_spent(1) == 0.5
        # a different dispatch (round or payload) is a fresh release
        assert acc.record(1, 0.5, key=dispatch_fingerprint(4, np.arange(4, dtype=np.float64)))
        assert acc.epsilon_spent(1) == 1.0

    def test_keyless_records_always_charge(self):
        acc = PrivacyAccountant()
        assert acc.record(0, 0.25) and acc.record(0, 0.25)
        assert acc.epsilon_spent(0) == 0.5

    def test_infinite_epsilon_is_not_charged(self):
        acc = PrivacyAccountant()
        assert acc.record(0, float("inf")) is False
        assert acc.epsilon_spent(0) == 0.0

    def test_state_round_trip_preserves_dedupe(self):
        acc = PrivacyAccountant()
        key = dispatch_fingerprint(0, np.ones(3))
        acc.record(7, 1.0, key=key)
        clone = PrivacyAccountant()
        clone.load_accountant_state(acc.accountant_state())
        assert clone.record(7, 1.0, key=key) is False
        assert clone.epsilon_spent(7) == 1.0

    def test_legacy_flat_state_still_loads(self):
        acc = PrivacyAccountant()
        acc.record(7, 1.0)
        legacy = {cid: list(spends) for cid, spends in acc.accountant_state()["spend"].items()}
        fresh = PrivacyAccountant()
        fresh.load_accountant_state(legacy)
        assert fresh.epsilon_spent(7) == 1.0


# =========================================================== checkpoint guard
class TestMidWaveCaptureGuard:
    def test_hier_capture_rejects_half_folded_wave(self):
        from repro.hier import build_hier_federation
        from repro.scale import RunCheckpoint

        clients, test = make_clients_and_test(num_clients=6)
        runner = build_hier_federation(
            base_config("fedavg"), model_fn, clients, test_dataset=test, topology="edges:2"
        )
        RunCheckpoint.capture(runner)  # between rounds: fine
        edge = runner.edges[0]
        edge.receive_global(runner.server.broadcast_payload())
        edge.begin_collect()
        edge._participants.append(edge.shard[0])  # simulate a half-folded upload
        with pytest.raises(RuntimeError, match="mid-wave"):
            RunCheckpoint.capture(runner)
