"""Tests for the wire-codec stack: codecs, UpdatePacket, exchange, invariants.

Covers the PR acceptance criteria:

* codec round trips — identity bitwise, fp16/int8 within analytic error
  bounds, topk sparsity, delta against a reference;
* ``codec="identity"`` histories bit-for-bit equal to the seed (pre-codec)
  exchange loop for FedAvg/IIADMM/ICEADMM;
* delta + staleness correctness under FedBuff overwrites (IIADMM dual
  replicas bitwise-identical under lossy codecs, sync and async);
* packet wire serialisation round trips and on-wire byte accounting;
* DP noising ordered before encoding.
"""

import math

import numpy as np
import pytest

from repro.comm import (
    SerialCommunicator,
    UpdatePacket,
    decode_packet,
    encode_packet,
    parse_codec,
    payload_nbytes,
    resolve_codec,
    state_dict_nbytes,
)
from repro.comm.codecs import decode_packet_state
from repro.core import FLConfig, MLP, PacketExchange, build_federation
from repro.core.base import DUAL_KEY, GLOBAL_KEY, PRIMAL_KEY
from repro.data import TensorDataset, iid_partition


def make_dataset(n=150, dim=8, classes=3, seed=0, centers=None):
    rng = np.random.default_rng(seed)
    if centers is None:
        centers = rng.standard_normal((classes, dim)) * 3.0
    y = rng.integers(0, classes, n)
    x = centers[y] + rng.standard_normal((n, dim))
    return TensorDataset(x, y)


def make_clients_and_test(num_clients=2, seed=0):
    centers = np.random.default_rng(seed + 555).standard_normal((3, 8)) * 3.0
    train = make_dataset(150, seed=seed, centers=centers)
    test = make_dataset(60, seed=seed + 100, centers=centers)
    clients = iid_partition(train, num_clients, rng=np.random.default_rng(seed))
    return clients, test


def model_fn(seed=7):
    return MLP(8, 3, hidden_sizes=(16,), rng=np.random.default_rng(seed))


def base_config(algorithm, **kwargs):
    defaults = dict(num_rounds=3, local_steps=2, batch_size=32, lr=0.05, rho=2.0, zeta=2.0, seed=0)
    defaults.update(kwargs)
    return FLConfig(algorithm=algorithm, **defaults)


class TestParsing:
    def test_canonical_spec(self):
        assert parse_codec("identity").spec == "identity"
        assert parse_codec(" delta | int8 |topk:0.25 ").spec == "delta|int8|topk:0.25"

    def test_resolve_caches(self):
        assert resolve_codec("delta|int8") is resolve_codec("delta|int8")

    @pytest.mark.parametrize("spec", ["", "zstd", "int8:4", "topk:0", "topk:1.5", "topk:x"])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_codec(spec)

    def test_config_validates_codec(self):
        with pytest.raises(ValueError):
            FLConfig(algorithm="fedavg", codec="nope|int8")
        assert FLConfig(algorithm="fedavg", codec="delta|int8").codec == "delta|int8"

    def test_lossy_flags(self):
        assert not resolve_codec("identity").lossy
        for spec in ("fp16", "int8", "topk:0.5", "delta", "delta|int8"):
            assert resolve_codec(spec).lossy, spec


class TestRoundTrips:
    def state(self, dtype=np.float64, seed=0):
        rng = np.random.default_rng(seed)
        return {
            PRIMAL_KEY: rng.standard_normal(257).astype(dtype),
            DUAL_KEY: (rng.standard_normal((16, 4)) * 5).astype(dtype),
        }

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_identity_bitwise_and_nbytes(self, dtype):
        state = self.state(dtype)
        pipeline = resolve_codec("identity")
        packet = pipeline.encode_state(state)
        assert packet.nbytes == state_dict_nbytes(state)
        decoded = pipeline.decode_state(packet)
        for key in state:
            assert decoded[key].dtype == state[key].dtype
            assert np.array_equal(decoded[key], state[key])
            assert not np.may_share_memory(decoded[key], state[key])

    def test_fp16_error_bound_and_halved_bytes(self):
        state = {PRIMAL_KEY: np.random.default_rng(0).standard_normal(512).astype(np.float32)}
        pipeline = resolve_codec("fp16")
        packet = pipeline.encode_state(state)
        assert packet.nbytes == state_dict_nbytes(state) // 2
        decoded = pipeline.decode_state(packet)[PRIMAL_KEY]
        assert decoded.dtype == np.float32
        # Relative fp16 rounding error is <= 2^-11 per element.
        np.testing.assert_allclose(decoded, state[PRIMAL_KEY], rtol=2**-10, atol=1e-7)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_int8_error_bound(self, dtype):
        x = np.random.default_rng(1).standard_normal(1000).astype(dtype) * 3.0
        pipeline = resolve_codec("int8")
        packet = pipeline.encode_state({PRIMAL_KEY: x})
        # 1 byte/element + scale/zero-point metadata.
        assert packet.nbytes < state_dict_nbytes({PRIMAL_KEY: x}) // (x.itemsize - 1)
        decoded = pipeline.decode_state(packet)[PRIMAL_KEY]
        scale = np.abs(x).max() / 127.0
        assert decoded.dtype == x.dtype
        assert np.max(np.abs(decoded - x)) <= scale / 2 + 1e-12

    def test_int8_preserves_exact_zero(self):
        x = np.array([0.0, 1.0, -2.0, 0.0])
        decoded = resolve_codec("int8").decode_state(
            resolve_codec("int8").encode_state({PRIMAL_KEY: x})
        )[PRIMAL_KEY]
        assert decoded[0] == 0.0 and decoded[3] == 0.0

    def test_int8_passthrough_for_int_arrays(self):
        x = np.arange(10, dtype=np.int64)
        packet = resolve_codec("int8").encode_state({"counts": x})
        decoded = resolve_codec("int8").decode_state(packet)["counts"]
        assert np.array_equal(decoded, x) and decoded.dtype == np.int64

    def test_topk_keeps_largest_and_zeroes_rest(self):
        x = np.array([0.1, -5.0, 0.2, 4.0, -0.3, 3.0, 0.05, -2.0, 0.0, 1.0])
        pipeline = resolve_codec("topk:0.3")
        packet = pipeline.encode_state({PRIMAL_KEY: x})
        decoded = pipeline.decode_state(packet)[PRIMAL_KEY]
        expected = np.zeros_like(x)
        for i in (1, 3, 5):  # the 3 largest-|x| entries
            expected[i] = x[i]
        np.testing.assert_array_equal(decoded, expected)

    def test_topk_full_fraction_is_exact(self):
        x = np.random.default_rng(2).standard_normal(32)
        decoded = resolve_codec("topk:1.0").decode_state(
            resolve_codec("topk:1.0").encode_state({PRIMAL_KEY: x})
        )[PRIMAL_KEY]
        np.testing.assert_array_equal(decoded, x)

    def test_delta_roundtrip_against_reference(self):
        rng = np.random.default_rng(3)
        ref = rng.standard_normal(200)
        x = ref + 1e-3 * rng.standard_normal(200)
        pipeline = resolve_codec("delta")
        packet = pipeline.encode_state({PRIMAL_KEY: x}, reference={PRIMAL_KEY: ref})
        decoded = pipeline.decode_state(packet, reference={PRIMAL_KEY: ref})[PRIMAL_KEY]
        np.testing.assert_allclose(decoded, x, rtol=0, atol=1e-12)
        # Without a reference the stage passes through unchanged (e.g. duals).
        packet2 = pipeline.encode_state({DUAL_KEY: x})
        np.testing.assert_array_equal(pipeline.decode_state(packet2)[DUAL_KEY], x)

    def test_delta_decode_requires_reference(self):
        ref = np.ones(8)
        packet = resolve_codec("delta").encode_state({PRIMAL_KEY: ref * 2}, reference={PRIMAL_KEY: ref})
        with pytest.raises(ValueError):
            resolve_codec("delta").decode_state(packet)

    def test_composite_delta_int8_topk(self):
        rng = np.random.default_rng(4)
        ref = rng.standard_normal(4096)
        x = ref + 0.01 * rng.standard_normal(4096)
        pipeline = resolve_codec("delta|int8|topk:0.1")
        packet = pipeline.encode_state({PRIMAL_KEY: x}, reference={PRIMAL_KEY: ref})
        decoded = pipeline.decode_state(packet, reference={PRIMAL_KEY: ref})[PRIMAL_KEY]
        # Dropped entries decode to exactly the reference; kept entries are
        # within the int8 quantization bound of the true delta.
        delta = x - ref
        scale = np.abs(delta).max() / 127.0
        assert np.max(np.abs(decoded - x)) <= np.abs(delta).max()
        kept = decoded != ref
        assert 0 < kept.sum() <= math.ceil(0.1 * x.size) + 1
        assert np.max(np.abs((decoded - ref)[kept] - delta[kept])) <= scale / 2 + 1e-12
        # Bytes: ~0.1n values at 1B + 0.1n int32 indices, far below raw.
        assert packet.nbytes < x.nbytes / 10

    def test_quantization_after_noise_preserves_dp_release(self):
        # DP ordering: the codec encodes the *already-noised* value; decoding
        # recovers it within the quantization bound, so the released value
        # (and its guarantee) is what reaches the server, merely discretised.
        rng = np.random.default_rng(5)
        released = rng.standard_normal(300) + rng.laplace(scale=0.5, size=300)
        pipeline = resolve_codec("int8")
        decoded = pipeline.decode_state(pipeline.encode_state({PRIMAL_KEY: released}))[PRIMAL_KEY]
        scale = np.abs(released).max() / 127.0
        assert np.max(np.abs(decoded - released)) <= scale / 2 + 1e-12


class TestPacketWireFormat:
    def test_encode_decode_packet_roundtrip(self):
        rng = np.random.default_rng(6)
        ref = rng.standard_normal(500)
        state = {PRIMAL_KEY: ref + 0.1 * rng.standard_normal(500), DUAL_KEY: rng.standard_normal(500)}
        pipeline = resolve_codec("delta|int8|topk:0.2")
        packet = pipeline.encode_state(state, reference={PRIMAL_KEY: ref})
        blob = encode_packet(packet)
        assert isinstance(blob, bytes)
        rebuilt = decode_packet(blob)
        assert rebuilt.codec == packet.codec
        assert list(rebuilt.entries) == list(packet.entries)
        assert rebuilt.nbytes == packet.nbytes
        for key in packet.entries:
            a, b = packet.entries[key], rebuilt.entries[key]
            assert a.shape == b.shape and a.dtype == b.dtype
            assert np.array_equal(a.data, b.data)
        # Decoding the rebuilt packet gives the same payload bit-for-bit.
        d1 = pipeline.decode_state(packet, reference={PRIMAL_KEY: ref})
        d2 = decode_packet_state(rebuilt, reference={PRIMAL_KEY: ref})
        for key in d1:
            assert np.array_equal(d1[key], d2[key])

    def test_decode_packet_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_packet(b"NOPE1234")

    def test_payload_nbytes_dispatch(self):
        state = {"a": np.zeros(10, dtype=np.float32)}
        assert payload_nbytes(state) == 40
        packet = resolve_codec("identity").encode_state(state)
        assert payload_nbytes(packet) == 40

    def test_communicator_transports_packets(self):
        comm = SerialCommunicator()
        state = {PRIMAL_KEY: np.random.default_rng(0).standard_normal(64)}
        packet = resolve_codec("int8").encode_state(state)
        received = comm.broadcast(0, packet, [0, 1])
        assert comm.total_bytes() == 2 * packet.nbytes
        assert all(isinstance(p, UpdatePacket) for p in received.values())
        gathered = comm.collect(0, {0: packet})
        assert comm.total_bytes() == 3 * packet.nbytes
        assert isinstance(gathered[0], UpdatePacket)


class TestExchange:
    def test_lossless_exchange_echoes_bitwise(self):
        ex = PacketExchange("identity")
        payload = {GLOBAL_KEY: np.random.default_rng(0).standard_normal(32)}
        opened = ex.open_dispatch(ex.encode_dispatch(payload))
        assert np.array_equal(opened[GLOBAL_KEY], payload[GLOBAL_KEY])
        assert not ex.lossy

    def test_upload_reference_threading(self):
        ex = PacketExchange("delta|int8")
        rng = np.random.default_rng(1)
        w = rng.standard_normal(128)
        upload = {PRIMAL_KEY: w + 0.01 * rng.standard_normal(128)}
        packet = ex.encode_upload(upload, w)
        echo = ex.open_upload(packet, w)
        scale = np.abs(upload[PRIMAL_KEY] - w).max() / 127.0
        assert np.max(np.abs(echo[PRIMAL_KEY] - upload[PRIMAL_KEY])) <= scale / 2 + 1e-12


class TestIdentityMatchesSeedLoop:
    """codec="identity" must be bit-for-bit the pre-codec exchange loop."""

    @pytest.mark.parametrize("algorithm", ["fedavg", "iiadmm", "iceadmm"])
    def test_history_bitwise_equal_to_manual_seed_loop(self, algorithm):
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config(algorithm, num_rounds=3)

        # Arm 1: the packet-based runner with the default identity codec.
        runner = build_federation(cfg, model_fn, clients, test)
        history = runner.run()

        # Arm 2: the seed's hand-rolled loop — dict broadcast with per-client
        # copies, client updates, dict gather with copies, server.update.
        ref = build_federation(cfg, model_fn, clients, test)
        accs = []
        for t in range(cfg.num_rounds):
            payload = ref.server.broadcast_payload()
            received = {c.client_id: {k: np.array(v, copy=True) for k, v in payload.items()} for c in ref.clients}
            uploads = {c.client_id: c.update(received[c.client_id]) for c in ref.clients}
            gathered = {cid: {k: np.array(v, copy=True) for k, v in up.items()} for cid, up in uploads.items()}
            ref.server.update(gathered)
            ref.server.sync_model()
            accs.append(ref.evaluator(ref.server.model)[0])

        assert np.array_equal(runner.server.global_params, ref.server.global_params)
        assert [r.test_accuracy for r in history.rounds] == accs
        if hasattr(ref.server, "duals"):
            for c in ref.clients:
                assert np.array_equal(runner.server.duals[c.client_id], ref.server.duals[c.client_id])

    @pytest.mark.parametrize("algorithm", ["fedavg", "iiadmm", "iceadmm"])
    def test_identity_comm_bytes_are_raw_tensor_bytes(self, algorithm):
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config(algorithm, num_rounds=1)
        runner = build_federation(cfg, model_fn, clients, test)
        history = runner.run()
        dim = runner.server.vectorizer.dim
        per_vector = dim * 8  # float64
        vectors_per_round = 2 + (4 if algorithm == "iceadmm" else 2)  # down + up
        assert history.rounds[0].comm_bytes == vectors_per_round * per_vector


class TestLossyInvariants:
    @pytest.mark.parametrize("codec", ["fp16", "int8", "delta|int8", "delta|int8|topk:0.3"])
    def test_sync_iiadmm_dual_replicas_bitwise_under_lossy_codec(self, codec):
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config("iiadmm", num_rounds=3, codec=codec)
        runner = build_federation(cfg, model_fn, clients, test)
        runner.run()
        for client in runner.clients:
            assert np.array_equal(runner.server.duals[client.client_id], client.dual), codec

    def test_sync_iiadmm_dual_replicas_bitwise_under_privacy_and_codec(self):
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config("iiadmm", num_rounds=2, codec="delta|int8").with_privacy(5.0)
        runner = build_federation(cfg, model_fn, clients, test)
        runner.run()
        for client in runner.clients:
            assert np.array_equal(runner.server.duals[client.client_id], client.dual)

    def test_async_fedbuff_overwrites_with_delta_codec(self):
        """Delta + staleness correctness: the dispatched-global reference and
        the dual replay must both survive FedBuff buffer overwrites."""
        from repro.asyncfl import FedBuffStrategy, UniformSampler, build_async_federation
        from repro.comm import TCPLinkModel
        from repro.simulator import A100, CPU_DEVICE

        clients, test = make_clients_and_test(num_clients=4)
        cfg = base_config("iiadmm", num_rounds=8, codec="delta|int8")
        runner = build_async_federation(
            cfg,
            model_fn,
            clients,
            test,
            strategy=FedBuffStrategy(3),
            sampler=UniformSampler(4, fraction=0.5, seed=3),
            devices=[A100, A100, CPU_DEVICE, CPU_DEVICE],
            link=TCPLinkModel(),
            concurrency=2,
        )
        runner.run()
        # Staleness and overwrites actually occurred...
        assert len(runner.async_server.staleness_log) > len(runner.history)
        # ...and every replica still matches its client bitwise.
        for client in runner.clients:
            assert np.array_equal(runner.server.duals[client.client_id], client.dual)

    @pytest.mark.parametrize("algorithm", ["fedavg", "iiadmm", "iceadmm"])
    def test_lossy_codecs_still_learn(self, algorithm):
        clients, test = make_clients_and_test(num_clients=2, seed=2)
        cfg = base_config(algorithm, num_rounds=4, local_steps=3, codec="delta|int8")
        history = build_federation(cfg, model_fn, clients, test).run()
        assert history.final_accuracy > 0.6

    def test_compressed_bytes_drive_comm_time(self):
        from repro.comm import GRPCSimCommunicator

        clients, test = make_clients_and_test(num_clients=2)

        def seconds(codec):
            cfg = base_config("fedavg", num_rounds=2, codec=codec)
            comm = GRPCSimCommunicator(rng=np.random.default_rng(0))
            runner = build_federation(cfg, model_fn, clients, test, communicator=comm)
            runner.run()
            return comm.log.total_seconds()

        assert seconds("int8") < seconds("identity")

    def test_runner_rejects_client_server_codec_mismatch(self):
        from repro.core import FederatedRunner

        clients, test = make_clients_and_test(num_clients=2)
        a = build_federation(base_config("iiadmm", codec="int8"), model_fn, clients, test)
        b = build_federation(base_config("iiadmm", codec="identity"), model_fn, clients, test)
        with pytest.raises(ValueError, match="codec"):
            FederatedRunner(a.server, b.clients)

    def test_legacy_update_override_still_drives_aggregation(self):
        """A plug-and-play server overriding only update() (the paper's
        documented extension API) must still run its custom aggregation."""
        from repro.core import FedAvgServer, FederatedRunner
        from repro.core.registry import register_algorithm
        from repro.core.fedavg import FedAvgClient

        calls = []

        class MyServer(FedAvgServer):
            def update(self, payloads):
                calls.append(sorted(payloads))
                super().update(payloads)

        register_algorithm("legacy_update_test", MyServer, FedAvgClient)
        clients, test = make_clients_and_test(num_clients=2)
        cfg = base_config("legacy_update_test", num_rounds=2)
        runner = build_federation(cfg, model_fn, clients, test)
        assert runner.server.uses_legacy_update
        runner.run()
        assert calls == [[0, 1], [0, 1]]
        # Built-ins themselves use the ingest/finalize path.
        plain = build_federation(base_config("fedavg"), model_fn, clients, test)
        assert not plain.server.uses_legacy_update

    def test_async_wall_clock_shrinks_with_compression(self):
        from repro.asyncfl import FedBuffStrategy, build_async_federation
        from repro.comm import TCPLinkModel

        clients, test = make_clients_and_test(num_clients=2)

        def clock(codec):
            cfg = base_config("fedavg", num_rounds=3, codec=codec)
            runner = build_async_federation(
                cfg, model_fn, clients, test, strategy=FedBuffStrategy(2), link=TCPLinkModel()
            )
            runner.run()
            return runner.now

        assert clock("int8") < clock("identity")
