"""Tests for FLConfig, ModelVectorizer, BaseServer/BaseClient, registry, metrics."""

import math

import numpy as np
import pytest

from repro import nn
from repro.core import (
    FLConfig,
    PrivacyConfig,
    BaseClient,
    BaseServer,
    Evaluator,
    MLP,
    LogisticRegression,
    ModelVectorizer,
    PaperCNN,
    available_algorithms,
    build_model,
    evaluate,
    get_algorithm,
    register_algorithm,
)
from repro.core.base import GLOBAL_KEY
from repro.data import TensorDataset


def tiny_dataset(n=40, dim=6, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, dim))
    y = rng.integers(0, classes, n)
    return TensorDataset(x, y)


def tiny_model(seed=0):
    return MLP(6, 3, hidden_sizes=(8,), rng=np.random.default_rng(seed))


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = FLConfig()
        assert cfg.num_rounds == 50
        assert cfg.local_steps == 10
        assert cfg.batch_size == 64
        assert not cfg.privacy.enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_rounds": 0},
            {"local_steps": 0},
            {"batch_size": 0},
            {"lr": 0.0},
            {"momentum": 1.0},
            {"rho": 0.0},
            {"zeta": -1.0},
            {"rho_growth": 0.0},
            {"algorithm": ""},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FLConfig(**kwargs)

    def test_privacy_config_validation(self):
        with pytest.raises(ValueError):
            PrivacyConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            PrivacyConfig(clip_norm=0.0)
        with pytest.raises(ValueError):
            PrivacyConfig(mechanism="exponential")

    def test_privacy_enabled_flag(self):
        assert PrivacyConfig(epsilon=3.0).enabled
        assert not PrivacyConfig(epsilon=math.inf).enabled

    def test_with_privacy_and_with_algorithm(self):
        cfg = FLConfig(algorithm="fedavg")
        private = cfg.with_privacy(5.0)
        assert private.privacy.epsilon == 5.0
        assert cfg.privacy.epsilon == math.inf  # original untouched (frozen)
        assert cfg.with_algorithm("iiadmm").algorithm == "iiadmm"

    def test_custom_algorithm_name_allowed(self):
        assert FLConfig(algorithm="my_custom_alg").algorithm == "my_custom_alg"


class TestModelVectorizer:
    def test_dim_matches_num_parameters(self):
        model = tiny_model()
        vec = ModelVectorizer(model)
        assert vec.dim == model.num_parameters()

    def test_roundtrip(self):
        model = tiny_model()
        vec = ModelVectorizer(model)
        original = vec.to_vector()
        vec.load_vector(np.zeros(vec.dim))
        assert np.all(vec.to_vector() == 0)
        vec.load_vector(original)
        np.testing.assert_allclose(vec.to_vector(), original)

    def test_load_wrong_shape(self):
        vec = ModelVectorizer(tiny_model())
        with pytest.raises(ValueError):
            vec.load_vector(np.zeros(vec.dim + 1))

    def test_grad_vector_zeros_when_no_grad(self):
        vec = ModelVectorizer(tiny_model())
        np.testing.assert_allclose(vec.grad_vector(), np.zeros(vec.dim))

    def test_grad_vector_after_backward(self):
        model = tiny_model()
        vec = ModelVectorizer(model)
        x = np.random.default_rng(0).standard_normal((5, 6))
        y = np.array([0, 1, 2, 0, 1])
        loss = nn.CrossEntropyLoss()(model(nn.Tensor(x)), y)
        loss.backward()
        g = vec.grad_vector()
        assert g.shape == (vec.dim,)
        assert np.linalg.norm(g) > 0


class TestModels:
    def test_paper_cnn_forward_shape(self):
        model = PaperCNN(1, 10, image_size=(28, 28), hidden=16, conv_channels=(4, 8), rng=np.random.default_rng(0))
        out = model(nn.Tensor(np.zeros((2, 1, 28, 28))))
        assert out.shape == (2, 10)

    def test_mlp_flattens_images(self):
        model = MLP(28 * 28, 10, rng=np.random.default_rng(0))
        out = model(nn.Tensor(np.zeros((3, 1, 28, 28))))
        assert out.shape == (3, 10)

    def test_logistic_regression(self):
        model = LogisticRegression(12, 4, rng=np.random.default_rng(0))
        out = model(nn.Tensor(np.zeros((5, 12))))
        assert out.shape == (5, 4)

    def test_build_model_kinds(self):
        shape = (1, 8, 8)
        assert isinstance(build_model("cnn", shape, 3), PaperCNN)
        assert isinstance(build_model("mlp", shape, 3), MLP)
        assert isinstance(build_model("logistic", shape, 3), LogisticRegression)
        with pytest.raises(ValueError):
            build_model("transformer", shape, 3)


class TestBaseClasses:
    def test_base_client_update_abstract(self):
        client = BaseClient(0, tiny_model(), tiny_dataset(), FLConfig(algorithm="fedavg"))
        with pytest.raises(NotImplementedError):
            client.update({GLOBAL_KEY: np.zeros(client.vectorizer.dim)})

    def test_base_server_update_abstract(self):
        server = BaseServer(tiny_model(), FLConfig(algorithm="fedavg"), num_clients=2)
        with pytest.raises(NotImplementedError):
            server.update({})

    def test_client_num_samples_and_gradient(self):
        ds = tiny_dataset(30)
        client = BaseClient(0, tiny_model(), ds, FLConfig(algorithm="fedavg", batch_size=16))
        assert client.num_samples == 30
        params = client.vectorizer.to_vector()
        g = client.full_gradient(params)
        assert g.shape == params.shape
        assert np.linalg.norm(g) > 0

    def test_client_local_loss_decreases_with_gradient_step(self):
        ds = tiny_dataset(30)
        client = BaseClient(0, tiny_model(), ds, FLConfig(algorithm="fedavg"))
        params = client.vectorizer.to_vector()
        loss0 = client.local_loss(params)
        g = client.full_gradient(params)
        loss1 = client.local_loss(params - 0.1 * g)
        assert loss1 < loss0

    def test_clip_gradient_only_when_private(self):
        ds = tiny_dataset()
        big = np.full(10, 100.0)
        non_private = BaseClient(0, tiny_model(), ds, FLConfig(algorithm="fedavg"))
        np.testing.assert_allclose(non_private.clip_gradient(big), big)
        private = BaseClient(0, tiny_model(), ds, FLConfig(algorithm="fedavg").with_privacy(3.0, clip_norm=1.0))
        assert np.linalg.norm(private.clip_gradient(big)) == pytest.approx(1.0)

    def test_server_client_weights_uniform_vs_weighted(self):
        cfg_uniform = FLConfig(algorithm="fedavg", weighted_aggregation=False)
        cfg_weighted = FLConfig(algorithm="fedavg", weighted_aggregation=True)
        counts = [10, 30]
        s_u = BaseServer(tiny_model(), cfg_uniform, 2, counts)
        s_w = BaseServer(tiny_model(), cfg_weighted, 2, counts)
        np.testing.assert_allclose(s_u.client_weights(), [0.5, 0.5])
        np.testing.assert_allclose(s_w.client_weights(), [0.25, 0.75])

    def test_server_validation(self):
        with pytest.raises(ValueError):
            BaseServer(tiny_model(), FLConfig(algorithm="fedavg"), num_clients=0)
        with pytest.raises(ValueError):
            BaseServer(tiny_model(), FLConfig(algorithm="fedavg"), num_clients=2, client_sample_counts=[1])

    def test_broadcast_payload_is_copy(self):
        server = BaseServer(tiny_model(), FLConfig(algorithm="fedavg"), num_clients=1)
        payload = server.broadcast_payload()
        payload[GLOBAL_KEY][0] = 1e9
        assert server.global_params[0] != 1e9


class TestRegistry:
    def test_builtins_registered(self):
        assert {"fedavg", "iceadmm", "iiadmm"} <= set(available_algorithms())

    def test_get_algorithm_case_insensitive(self):
        assert get_algorithm("FedAvg") == get_algorithm("fedavg")

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            get_algorithm("does-not-exist")

    def test_register_custom(self):
        from repro.core.fedavg import FedAvgClient, FedAvgServer

        class MyServer(FedAvgServer):
            pass

        class MyClient(FedAvgClient):
            pass

        register_algorithm("my_test_alg", MyServer, MyClient)
        assert get_algorithm("my_test_alg") == (MyServer, MyClient)

    def test_register_invalid_types(self):
        with pytest.raises(TypeError):
            register_algorithm("bad", dict, BaseClient)
        with pytest.raises(TypeError):
            register_algorithm("bad", BaseServer, dict)


class TestMetrics:
    def test_evaluate_perfect_model(self):
        # A linear model constructed to classify perfectly.
        ds = TensorDataset(np.eye(3), np.arange(3))
        model = LogisticRegression(3, 3, rng=np.random.default_rng(0))
        model.linear.weight.data[...] = 10 * np.eye(3)
        model.linear.bias.data[...] = 0.0
        acc, loss = evaluate(model, ds)
        assert acc == 1.0
        assert loss < 0.01

    def test_evaluate_random_model_near_chance(self):
        ds = tiny_dataset(300, dim=6, classes=3, seed=1)
        model = MLP(6, 3, hidden_sizes=(4,), rng=np.random.default_rng(0))
        acc, loss = evaluate(model, ds)
        assert 0.1 < acc < 0.7
        assert loss > 0.5

    def test_evaluator_callable(self):
        ds = tiny_dataset(20)
        ev = Evaluator(ds, batch_size=8)
        acc, loss = ev(tiny_model())
        assert 0.0 <= acc <= 1.0

    def test_evaluate_empty_dataset(self):
        ds = TensorDataset(np.zeros((0, 6)), np.zeros(0))
        acc, loss = evaluate(tiny_model(), ds) if len(ds) else (0.0, 0.0)
        assert acc == 0.0 and loss == 0.0

    def test_evaluate_restores_training_mode(self):
        model = tiny_model()
        model.train()
        evaluate(model, tiny_dataset(10))
        assert model.training
