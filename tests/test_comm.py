"""Tests for serialization, latency models, communication logs, and communicators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    CommLog,
    CommRecord,
    Communicator,
    GRPCChannelModel,
    GRPCSimCommunicator,
    JitterModel,
    LinkModel,
    MPIChannelModel,
    MPISimCommunicator,
    RDMALinkModel,
    SerialCommunicator,
    SerializationModel,
    TCPLinkModel,
    client_endpoint,
    decode_state_dict,
    encode_state_dict,
    flatten_state_dict,
    server_endpoint,
    state_dict_nbytes,
    unflatten_state_dict,
)


def sample_state(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "conv.weight": rng.standard_normal((4, 1, 3, 3)),
        "conv.bias": rng.standard_normal(4),
        "fc.weight": rng.standard_normal((10, 36)),
    }


class TestSerialization:
    def test_nbytes(self):
        state = {"a": np.zeros(10, dtype=np.float64), "b": np.zeros((2, 2), dtype=np.float32)}
        assert state_dict_nbytes(state) == 10 * 8 + 4 * 4

    def test_flatten_unflatten_roundtrip(self):
        state = sample_state()
        vec, layout = flatten_state_dict(state)
        assert vec.shape == (4 * 9 + 4 + 360,)
        rebuilt = unflatten_state_dict(vec, layout)
        for k in state:
            np.testing.assert_allclose(rebuilt[k], state[k])

    def test_flatten_preserves_order(self):
        state = sample_state()
        _, layout = flatten_state_dict(state)
        assert list(layout) == list(state)

    def test_flatten_empty(self):
        vec, layout = flatten_state_dict({})
        assert vec.size == 0 and layout == {}

    def test_unflatten_copies(self):
        state = {"a": np.arange(4.0)}
        vec, layout = flatten_state_dict(state)
        rebuilt = unflatten_state_dict(vec, layout)
        rebuilt["a"][0] = 99
        assert vec[0] == 0.0

    def test_encode_decode_roundtrip(self):
        state = sample_state()
        payload = encode_state_dict(state)
        assert isinstance(payload, bytes)
        decoded = decode_state_dict(payload)
        assert list(decoded) == list(state)
        for k in state:
            np.testing.assert_allclose(decoded[k], state[k])

    def test_encode_scalar_and_int_arrays(self):
        state = {"count": np.array(7, dtype=np.int64), "flags": np.array([1, 0, 1], dtype=np.int32)}
        decoded = decode_state_dict(encode_state_dict(state))
        assert decoded["count"] == 7
        assert decoded["flags"].dtype == np.int32

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_state_dict(b"NOPExxxx")

    @given(st.integers(1, 40), st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_flatten_dim_matches_total(self, n, m):
        state = {"w": np.zeros((n, m)), "b": np.zeros(n)}
        vec, _ = flatten_state_dict(state)
        assert vec.size == n * m + n


class TestLatencyModels:
    def test_link_transfer_time(self):
        link = LinkModel(latency=1e-3, bandwidth=1e6)
        assert link.transfer_time(1000) == pytest.approx(1e-3 + 1e-3)

    def test_link_negative_bytes(self):
        with pytest.raises(ValueError):
            LinkModel(1e-3, 1e6).transfer_time(-1)

    def test_rdma_faster_than_tcp(self):
        nbytes = 10_000_000
        assert RDMALinkModel().transfer_time(nbytes) < TCPLinkModel().transfer_time(nbytes)

    def test_serialization_costs_scale_with_bytes(self):
        ser = SerializationModel()
        assert ser.one_way_time(2_000_000) > ser.one_way_time(1_000_000)
        assert ser.receive_time(2_000_000) > ser.receive_time(1_000_000)

    def test_serialization_negative(self):
        with pytest.raises(ValueError):
            SerializationModel().one_way_time(-5)
        with pytest.raises(ValueError):
            SerializationModel().receive_time(-5)

    def test_jitter_median_near_one(self):
        jitter = JitterModel(sigma=0.85, rng=np.random.default_rng(0))
        samples = np.array([jitter.sample() for _ in range(4000)])
        assert 0.9 < np.median(samples) < 1.1

    def test_jitter_spread_matches_paper_magnitude(self):
        # Paper Figure 4b: ~30x difference between fast and slow rounds.
        jitter = JitterModel(sigma=0.85, rng=np.random.default_rng(1))
        samples = np.array([jitter.sample() for _ in range(5000)])
        ratio = np.percentile(samples, 98) / np.percentile(samples, 2)
        assert 10 < ratio < 100

    def test_jitter_zero_sigma(self):
        assert JitterModel(sigma=0.0).sample() == 1.0

    def test_jitter_negative_sigma(self):
        with pytest.raises(ValueError):
            JitterModel(sigma=-1.0)

    def test_mpi_gather_grows_with_ranks_latency(self):
        model = MPIChannelModel()
        small = model.gather_time(1000, 2)
        large = model.gather_time(1000, 256)
        assert large > small

    def test_mpi_gather_root_term_uses_total(self):
        model = MPIChannelModel()
        t_const_total = model.gather_time(1000, 8, total_nbytes=8_000_000)
        t_small_total = model.gather_time(1000, 8, total_nbytes=8_000)
        assert t_const_total > t_small_total

    def test_mpi_gather_validation(self):
        model = MPIChannelModel()
        with pytest.raises(ValueError):
            model.gather_time(100, 0)
        with pytest.raises(ValueError):
            model.gather_time(-1, 4)
        with pytest.raises(ValueError):
            model.bcast_time(100, 0)

    def test_grpc_round_trip_slower_than_mpi_p2p(self):
        nbytes = 2_000_000  # ~ the paper's CNN model size
        grpc = GRPCChannelModel(jitter=JitterModel(sigma=0.0))
        mpi = MPIChannelModel()
        assert grpc.request_time(nbytes) > 5 * mpi.p2p_time(nbytes)

    def test_grpc_round_trip_is_sum_of_requests(self):
        grpc = GRPCChannelModel(jitter=JitterModel(sigma=0.0))
        rt = grpc.round_trip_time(1000, 1000)
        assert rt == pytest.approx(2 * grpc.request_time(1000))


class TestCommLog:
    def make_log(self):
        log = CommLog()
        for rnd in range(3):
            for cid in range(2):
                log.add(CommRecord(rnd, f"client:{cid}", "send_local", 100, 0.5 + cid))
        return log

    def test_total_seconds(self):
        log = self.make_log()
        assert log.total_seconds() == pytest.approx(3 * (0.5 + 1.5))
        assert log.total_seconds("client:1") == pytest.approx(4.5)

    def test_skip_rounds(self):
        log = self.make_log()
        assert log.total_seconds("client:0", skip_rounds=[0]) == pytest.approx(1.0)

    def test_total_bytes(self):
        assert self.make_log().total_bytes() == 600
        assert self.make_log().total_bytes("client:0") == 300

    def test_per_round_and_cumulative(self):
        log = self.make_log()
        per_round = log.per_round_seconds("client:1")
        assert per_round == {0: 1.5, 1: 1.5, 2: 1.5}
        np.testing.assert_allclose(log.cumulative_seconds("client:1"), [1.5, 3.0, 4.5])
        np.testing.assert_allclose(log.cumulative_seconds("client:1", skip_rounds=[0]), [1.5, 3.0])

    def test_round_times(self):
        log = self.make_log()
        np.testing.assert_allclose(log.round_times("client:0"), [0.5, 0.5, 0.5])

    def test_endpoints_and_len_and_clear(self):
        log = self.make_log()
        assert log.endpoints() == ["client:0", "client:1"]
        assert len(log) == 6
        log.clear()
        assert len(log) == 0

    def test_empty_cumulative(self):
        assert CommLog().cumulative_seconds("client:9").size == 0


class TestCommunicators:
    def test_endpoint_names(self):
        assert server_endpoint() == "server"
        assert client_endpoint(3) == "client:3"

    def test_serial_zero_cost_and_isolation(self):
        comm = SerialCommunicator()
        state = sample_state()
        received = comm.broadcast(0, state, [0, 1, 2])
        assert comm.log.total_seconds() == 0.0
        assert set(received) == {0, 1, 2}
        received[0]["conv.bias"][0] = 123.0
        assert state["conv.bias"][0] != 123.0

    def test_collect_isolation(self):
        comm = SerialCommunicator()
        uploads = {0: sample_state(0), 1: sample_state(1)}
        gathered = comm.collect(0, uploads)
        gathered[0]["conv.bias"][0] = 321.0
        assert uploads[0]["conv.bias"][0] != 321.0

    def test_serial_logs_bytes(self):
        comm = SerialCommunicator()
        state = sample_state()
        comm.broadcast(0, state, [0, 1])
        assert comm.total_bytes() == 2 * state_dict_nbytes(state)

    def test_mpi_communicator_charges_time(self):
        comm = MPISimCommunicator(num_processes=4)
        state = sample_state()
        comm.broadcast(0, state, list(range(8)))
        comm.collect(0, {cid: state for cid in range(8)})
        assert comm.log.total_seconds() > 0
        assert comm.client_comm_seconds(0) > 0

    def test_mpi_invalid_processes(self):
        with pytest.raises(ValueError):
            MPISimCommunicator(num_processes=0)

    def test_mpi_clients_per_process(self):
        comm = MPISimCommunicator(num_processes=5)
        assert comm.clients_per_process(203) == 41
        assert comm.clients_per_process(5) == 1

    def test_grpc_slower_than_mpi(self):
        state = sample_state()
        clients = list(range(4))
        mpi = MPISimCommunicator(num_processes=4)
        grpc = GRPCSimCommunicator(rng=np.random.default_rng(0))
        for rnd in range(5):
            mpi.broadcast(rnd, state, clients)
            mpi.collect(rnd, {c: state for c in clients})
            grpc.broadcast(rnd, state, clients)
            grpc.collect(rnd, {c: state for c in clients})
        assert grpc.log.total_seconds() > 3 * mpi.log.total_seconds()

    def test_grpc_jitter_reproducible_with_seed(self):
        state = sample_state()

        def run(seed):
            comm = GRPCSimCommunicator(rng=np.random.default_rng(seed))
            comm.broadcast(0, state, [0, 1])
            return comm.log.total_seconds()

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_mpi_round_times_analytics(self):
        comm = MPISimCommunicator(num_processes=8)
        g = comm.round_gather_time(model_nbytes=1_000_000, num_clients=64)
        b = comm.round_bcast_time(model_nbytes=1_000_000)
        assert g > 0 and b > 0

    def test_communicator_is_abstract(self):
        with pytest.raises(TypeError):
            Communicator()
