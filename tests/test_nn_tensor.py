"""Unit and property tests for the autograd Tensor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, no_grad


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of scalar-valued fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


class TestBasics:
    def test_tensor_wraps_array_without_copy_for_float64(self):
        a = np.ones((3, 3))
        t = Tensor(a)
        assert t.data is a

    def test_tensor_converts_dtype(self):
        t = Tensor(np.ones((2, 2), dtype=np.float32))
        assert t.dtype == np.float64

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.ndim == 3
        assert t.size == 24

    def test_item_and_len(self):
        assert Tensor(np.array(5.0)).item() == 5.0
        assert len(Tensor(np.zeros((7, 2)))) == 7

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert d.data is t.data
        assert not d.requires_grad

    def test_copy_is_independent(self):
        t = Tensor(np.ones(3))
        c = t.copy()
        c.data[0] = 99
        assert t.data[0] == 1.0

    def test_constructors(self):
        assert np.all(Tensor.zeros((2, 2)).data == 0)
        assert np.all(Tensor.ones((2, 2)).data == 1)
        r = Tensor.randn(4, 5, rng=np.random.default_rng(0))
        assert r.shape == (4, 5)

    def test_backward_requires_grad_error(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_nonscalar_requires_grad_arg(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()

    def test_no_grad_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        y2 = x * 2
        assert y2.requires_grad


class TestArithmeticGradients:
    def test_add_grad(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1, 1])

    def test_sub_grad(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [-1, -1])

    def test_mul_grad(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3, 4])
        np.testing.assert_allclose(b.grad, [1, 2])

    def test_div_grad(self):
        a = Tensor(np.array([6.0, 8.0]), requires_grad=True)
        b = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.25])
        np.testing.assert_allclose(b.grad, [-1.5, -0.5])

    def test_pow_grad(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, [12, 27])

    def test_neg_and_rsub_rdiv(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        ((-a) + (5 - a) + (4 / a)).sum().backward()
        np.testing.assert_allclose(a.grad, [-1 - 1 - 4 / 4.0])

    def test_matmul_grad_matches_numerical(self):
        rng = np.random.default_rng(1)
        A = rng.standard_normal((3, 4))
        B = rng.standard_normal((4, 2))
        ta, tb = Tensor(A.copy(), requires_grad=True), Tensor(B.copy(), requires_grad=True)
        (ta @ tb).sum().backward()
        na = numerical_grad(lambda a: (a @ B).sum(), A.copy())
        nb = numerical_grad(lambda b: (A @ b).sum(), B.copy())
        np.testing.assert_allclose(ta.grad, na, atol=1e-5)
        np.testing.assert_allclose(tb.grad, nb, atol=1e-5)

    def test_broadcast_add_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3 * np.ones(4))

    def test_broadcast_mul_grad(self):
        a = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        b = Tensor(np.array(3.0), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, 12.0)

    def test_fanout_accumulation(self):
        # x used twice: dy/dx should be the sum of both paths.
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2 * 2 + 3])

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])


class TestReductionsAndShapes:
    def test_sum_axis_grad(self):
        x = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        x.sum(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_sum_keepdims_grad(self):
        x = Tensor(np.ones((2, 5)), requires_grad=True)
        x.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 5)))

    def test_mean_grad(self):
        x = Tensor(np.ones((4, 5)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((4, 5), 1 / 20))

    def test_mean_axis_value(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        np.testing.assert_allclose(x.mean(axis=1).data, [1.0, 4.0])

    def test_max_grad_single_maximum(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 1, 0]])

    def test_max_grad_ties_split(self):
        x = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])

    def test_reshape_grad(self):
        x = Tensor(np.arange(6, dtype=float), requires_grad=True)
        (x.reshape(2, 3) * 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(6, 2.0))

    def test_transpose_grad(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        y = x.transpose()
        assert y.shape == (3, 2)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_getitem_grad(self):
        x = Tensor(np.arange(5, dtype=float), requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 1, 0, 0])

    def test_getitem_fancy_index_grad(self):
        x = Tensor(np.arange(4, dtype=float), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [2, 0, 1, 0])


class TestElementwiseGradients:
    @pytest.mark.parametrize(
        "op,ref",
        [
            ("exp", lambda v: np.exp(v)),
            ("log", lambda v: 1 / v),
            ("tanh", lambda v: 1 - np.tanh(v) ** 2),
            ("sigmoid", lambda v: (1 / (1 + np.exp(-v))) * (1 - 1 / (1 + np.exp(-v)))),
        ],
    )
    def test_unary_grads(self, op, ref):
        v = np.array([0.5, 1.5, 2.5])
        x = Tensor(v.copy(), requires_grad=True)
        getattr(x, op)().sum().backward()
        np.testing.assert_allclose(x.grad, ref(v), atol=1e-10)

    def test_relu_grad(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0, 0, 1])


class TestHypothesisProperties:
    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=1, max_dims=3, max_side=5),
            elements=st.floats(-10, 10),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_sum_grad_is_ones(self, arr):
        x = Tensor(arr.copy(), requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(arr))

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 6), st.integers(1, 6)),
            elements=st.floats(-5, 5),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_mul_by_constant_grad(self, arr):
        x = Tensor(arr.copy(), requires_grad=True)
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full_like(arr, 3.0))

    @given(st.integers(2, 8), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_matmul_shape(self, n, m):
        a = Tensor(np.ones((n, m)))
        b = Tensor(np.ones((m, 3)))
        assert (a @ b).shape == (n, 3)

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 4), st.integers(1, 4)),
            elements=st.floats(-3, 3),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_add_commutes(self, arr):
        a = Tensor(arr)
        b = Tensor(np.ones_like(arr))
        np.testing.assert_allclose((a + b).data, (b + a).data)
