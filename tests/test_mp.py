"""Process execution backend: bitwise equivalence, state sync, and the
worker-pool bugfix sweep.

The contract of :mod:`repro.mp`: with ``FLConfig.execution_backend =
"process"`` each round's local updates run in spawn-context worker processes
over shared-memory arenas, and the result is **bitwise identical** to the
serial backend for FedAvg / ICEADMM / IIADMM — histories, global parameters,
client RNG streams, ADMM dual replicas — across eager, store-backed, and
hierarchical federations, composing with ``client_batch``, tracing,
checkpoints, and the fault layer.  ``SharedMemoryTransport`` round-trips
payloads through a real shm segment bitwise.  The regression tests at the
bottom pin the worker-pool bugfix sweep: negative worker counts raise,
executors are sized by the participating cohort (not the full population),
and ``client_steps`` counts surviving clients only.
"""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.comm import SerialCommunicator, SharedMemoryTransport
from repro.core import FLConfig, build_federation
from repro.core.batched import count_client_steps
from repro.core.models import MLP, SeededModelFn
from repro.core.runner import FederatedRunner
from repro.data import TensorDataset
from repro.faults import FaultPlan
from repro.hier import build_hier_federation
from repro.hier.topology import contiguous_shards
from repro.mp import ProcessWorkerPool, payload_template, resolve_workers
from repro.obs import Tracer, use_tracer
from repro.scale import RunCheckpoint, build_virtual_federation

ALGORITHMS = ("fedavg", "iiadmm", "iceadmm")


def _datasets(num_clients, n=4, d=6, classes=3, seed=0):
    out = []
    for cid in range(num_clients):
        rng = np.random.default_rng(seed * 1_000_003 + cid)
        x = rng.standard_normal((n, d))
        y = rng.integers(0, classes, size=n)
        out.append(TensorDataset(x, y))
    return out


def _model_fn(d=6, classes=3):
    def build():
        return MLP(d, classes, hidden_sizes=(5,), rng=np.random.default_rng(42))

    return build


def _seeded_model_fn(d=6, classes=3):
    """Picklable equivalent of :func:`_model_fn` for store+process runs."""
    return SeededModelFn("mlp", (1, 1, d), classes, seed=42, hidden_sizes=(5,))


def _config(algorithm, backend, dtype="float64", **kwargs):
    return FLConfig(
        algorithm=algorithm,
        num_rounds=2,
        local_steps=2,
        batch_size=2,
        lr=0.05,
        seed=0,
        dtype=dtype,
        parallel_clients=2,
        execution_backend=backend,
        **kwargs,
    )


def _history_key(history):
    return [(r.round, r.test_accuracy, r.test_loss, r.comm_bytes) for r in history.rounds]


def _client_key(client):
    return (
        client.client_id,
        client.round,
        client.vectorizer.flat_params.tobytes(),
        repr(client.rng.bit_generator.state),
        None
        if not hasattr(client, "dual")
        else (client.dual.tobytes(), client.primal.tobytes()),
    )


def _run_flat(algorithm, backend, dtype, **cfg_kwargs):
    cfg = _config(algorithm, backend, dtype, **cfg_kwargs)
    runner = build_federation(cfg, _model_fn(), _datasets(5), test_dataset=_datasets(1, n=20)[0])
    history = runner.run()
    runner.close()  # syncs worker state back before we read it
    return (
        _history_key(history),
        runner.server.global_params.tobytes(),
        [_client_key(c) for c in runner.clients],
        runner.client_steps,
    )


def _run_hier(algorithm, backend, dtype, live_cap=None):
    cfg = _config(algorithm, backend, dtype, topology="edges:2")
    runner = build_hier_federation(
        cfg, _seeded_model_fn(), _datasets(6), test_dataset=_datasets(1, n=20)[0],
        live_cap=live_cap,
    )
    history = runner.run()
    duals = []
    if hasattr(runner.edges[0].server, "duals"):
        duals = [
            (edge.edge_id, cid, edge.server.duals[cid].tobytes())
            for edge in runner.edges
            for cid in edge.shard
        ]
    return (
        _history_key(history),
        runner.server.global_params.tobytes(),
        [(e.edge_id, e.server.global_params.tobytes()) for e in runner.edges],
        duals,
    )


# ------------------------------------------------------------- equivalence
class TestBitwiseMatrix:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_flat_serial_thread_process(self, algorithm, dtype):
        """serial == thread == process, bitwise, for every algorithm — same
        histories, global vector, client params/RNG streams, ADMM duals."""
        serial = _run_flat(algorithm, "serial", dtype)
        thread = _run_flat(algorithm, "thread", dtype)
        process = _run_flat(algorithm, "process", dtype)
        assert serial == thread
        assert serial == process

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_hier_serial_vs_process(self, algorithm, dtype):
        """Hierarchical (eager edges): per-edge pools reproduce the serial
        run bitwise, including every edge's IIADMM dual replicas."""
        assert _run_hier(algorithm, "serial", dtype) == _run_hier(algorithm, "process", dtype)

    def test_hier_store_backed_process(self):
        """Store-backed edges: each worker rebuilds its shard's slice from
        the pickled factory + state blobs and stays bitwise."""
        serial = _run_hier("iiadmm", "serial", "float64", live_cap=2)
        process = _run_hier("iiadmm", "process", "float64", live_cap=2)
        assert serial == process

    @pytest.mark.parametrize("algorithm", ["fedavg", "iiadmm"])
    def test_virtual_store_process(self, algorithm):
        """Flat virtual population: the process run's history, global vector,
        and post-run store blobs equal the serial run's."""

        def run(backend):
            runner = build_virtual_federation(
                _config(algorithm, backend), _seeded_model_fn(), _datasets(6),
                live_cap=4, test_dataset=_datasets(1, n=20)[0],
            )
            history = runner.run()
            runner.close()
            blobs = runner._store.snapshot()["blobs"]
            return (
                _history_key(history),
                runner.server.global_params.tobytes(),
                sorted(blobs.items()),
            )

        assert run("serial") == run("process")

    def test_client_batch_composes_with_process(self):
        """Workers replay the runners' batched-cohort gate: client_batch > 1
        under the process backend stays bitwise with serial per-client."""
        serial = _run_flat("iiadmm", "serial", "float64")
        batched_process = _run_flat("iiadmm", "process", "float64", client_batch=3)
        assert serial == batched_process


# ------------------------------------------------------ observability/state
class TestProcessObservability:
    def test_traced_equals_untraced_and_emits_worker_spans(self):
        """An armed tracer never perturbs a process run, and worker-side
        local_update spans surface parent-side in client order with the
        backend label."""
        untraced = _run_flat("fedavg", "process", "float64")
        tracer = Tracer()
        with use_tracer(tracer):
            traced = _run_flat("fedavg", "process", "float64")
        assert traced == untraced
        spans = [
            r for r in tracer.records
            if r.get("name") == "local_update" and r.get("backend") == "process"
        ]
        assert spans, "no worker-side local_update spans reached the tracer"
        per_round = [r["client"] for r in spans if r["lane"].startswith("client:")]
        # Client order within each round: emitted sorted by client id.
        clients_per_round = 5
        for start in range(0, len(per_round), clients_per_round):
            chunk = per_round[start : start + clients_per_round]
            assert chunk == sorted(chunk)
        for r in spans:
            assert r["t1"] >= r["t0"]

    def test_checkpoint_roundtrip_through_pool(self):
        """Interrupt a process-backend run, restore into a fresh process
        federation, continue — bitwise the uninterrupted serial run (the
        pool's sync_parent/push_from_parent hooks)."""
        serial = _run_flat("iiadmm", "serial", "float64")

        cfg = _config("iiadmm", "process")
        first = build_federation(cfg, _model_fn(), _datasets(5), test_dataset=_datasets(1, n=20)[0])
        first.run(1)
        blob = RunCheckpoint.save(first).to_bytes()
        first.close()

        resumed = build_federation(cfg, _model_fn(), _datasets(5), test_dataset=_datasets(1, n=20)[0])
        RunCheckpoint.from_bytes(blob).restore(resumed)
        history = resumed.run(1)
        resumed.close()
        assert (
            _history_key(history)[1:],
            resumed.server.global_params.tobytes(),
            [_client_key(c) for c in resumed.clients],
        ) == (serial[0][1:], serial[1], serial[2])

    def test_chaos_smoke_under_process_backend(self):
        """The chaos harness end to end with execution_backend='process':
        churn converges, kills recover, and both bitwise checks (async
        boundary kill + sync edge crash on the worker pool) hold."""
        from repro.harness.chaos import ChaosSettings, run_chaos

        result = run_chaos(ChaosSettings(
            num_clients=8,
            num_edges=4,
            kills=1,
            num_rounds=3,
            bitwise_rounds=2,
            samples_per_client=6,
            test_size=16,
            execution_backend="process",
        ))
        assert result.sync_backend == "process"
        assert result.sync_bitwise_identical
        assert result.ok


# ------------------------------------------------------------- transport
class TestSharedMemoryTransport:
    def test_state_dict_roundtrip_is_isolated_and_exact(self):
        with SharedMemoryTransport() as transport:
            state = {"w": np.arange(12, dtype=np.float64).reshape(3, 4), "b": np.ones(3)}
            out = transport.broadcast(0, state, [0, 1])
            for copy in out.values():
                for key in state:
                    np.testing.assert_array_equal(copy[key], state[key])
                    assert copy[key].dtype == state[key].dtype
            out[0]["w"][0, 0] = 99.0  # receiver must not alias the sender
            assert state["w"][0, 0] == 0.0

    @pytest.mark.parametrize("algorithm", ["fedavg", "iiadmm"])
    def test_run_bitwise_equals_serial_transport(self, algorithm):
        def run(communicator):
            cfg = _config(algorithm, "serial")
            runner = build_federation(
                cfg, _model_fn(), _datasets(4),
                test_dataset=_datasets(1, n=20)[0], communicator=communicator,
            )
            history = runner.run()
            return _history_key(history), runner.server.global_params.tobytes()

        shm = SharedMemoryTransport()
        try:
            assert run(SerialCommunicator()) == run(shm)
        finally:
            shm.close()


# ------------------------------------------------------------- pool pieces
class TestPoolPlumbing:
    def test_contiguous_shards(self):
        shards = contiguous_shards(range(10), 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        assert [cid for shard in shards for cid in shard] == list(range(10))
        with pytest.raises(ValueError):
            contiguous_shards(range(4), 0)

    def test_payload_template_detects_mismatch(self):
        base = {"g": np.arange(4.0), "round": 1}
        same = {0: base, 1: {"g": np.arange(4.0), "round": 1}}
        assert payload_template(same, [0, 1]) is not None
        diverged = {0: base, 1: {"g": np.arange(4.0) + 1, "round": 1}}
        assert payload_template(diverged, [0, 1]) is None
        scalar_diverged = {0: base, 1: {"g": np.arange(4.0), "round": 2}}
        assert payload_template(scalar_diverged, [0, 1]) is None

    def test_payload_template_uncomparable_entries_fall_back(self):
        """A payload entry that is a container of arrays (a custom
        communicator could nest them) has no unambiguous equality — the
        template check must return None (in-process fallback), not raise
        ValueError and kill the round."""
        payloads = {
            0: {"g": np.arange(4.0), "extras": [np.arange(3.0)]},
            1: {"g": np.arange(4.0), "extras": [np.arange(3.0)]},
        }
        assert payload_template(payloads, [0, 1]) is None

    def test_attachment_defers_pinned_segments(self):
        """A superseded segment whose views are still referenced cannot be
        closed yet — the attachment must park the handle and retry later, not
        drop it (which would leak the mmap and fd for the rest of the run)."""
        from repro.mp.shm import ShmArena, ShmAttachment

        arena = ShmArena(f"rpmpdefer{os.getpid()}")
        attachment = ShmAttachment()
        try:
            name1, man1 = arena.pack([("a", np.arange(4.0))])
            attachment.view(name1, man1, copy=False)
            # Pin generation 1 the way an outstanding consumer would: a live
            # buffer export makes close() raise BufferError.  (numpy views
            # release their export at construction, so pin via memoryview.)
            pinned = memoryview(attachment._segments[name1].buf)
            # Bigger payload → the arena grows by recreation under a new name.
            name2, man2 = arena.pack([("a", np.arange(4096.0))])
            assert name2 != name1
            attachment.view(name2, man2, copy=True)
            assert len(attachment._deferred) == 1  # parked, not leaked
            pinned.release()
            attachment.view(name2, man2, copy=True)  # retries the close
            assert attachment._deferred == []
        finally:
            attachment.close()
            arena.close()

    def test_store_factory_must_pickle(self):
        runner = build_virtual_federation(
            _config("fedavg", "process"), _model_fn(), _datasets(4), live_cap=4
        )
        with pytest.raises(RuntimeError, match="picklable"):
            ProcessWorkerPool.from_store(runner._store, 2)

    def test_process_backend_rejects_lossy_codec(self):
        cfg = _config("iiadmm", "process", codec="delta|int8")
        with pytest.raises(ValueError, match="lossless"):
            build_federation(cfg, _model_fn(), _datasets(4))


# ------------------------------------------------- fallback state consistency
class TestFallbackStateSync:
    """Rounds that cannot run on the process pool (non-template payloads)
    fall back in-process — the pool must be retired so the workers' stale
    state can neither serve a later pooled round nor be synced back over the
    parent's progress."""

    @staticmethod
    def _template_gate(monkeypatch, fallback_active):
        """Patch the template probe to report 'not a shared template' (the
        fallback trigger, without needing a custom per-client communicator)
        while ``fallback_active``; restore the real probe otherwise."""
        import repro.mp.pool as mp_pool

        real = mp_pool.payload_template.__wrapped__ if hasattr(
            mp_pool.payload_template, "__wrapped__"
        ) else mp_pool.payload_template
        if fallback_active:
            patched = lambda *a, **k: None  # noqa: E731
            patched.__wrapped__ = real
            monkeypatch.setattr(mp_pool, "payload_template", patched)
        else:
            monkeypatch.setattr(mp_pool, "payload_template", real)

    def test_flat_fallback_rounds_stay_bitwise(self, monkeypatch):
        """Pooled round, two consecutive in-process fallback rounds, pooled
        round again — bitwise the serial run throughout.  Without retiring
        the pool, round 3 would run on workers still holding round-0 state,
        and the second fallback's sync would revert round 1's progress."""

        def run(backend, fallback_rounds=()):
            runner = build_federation(_config("iiadmm", backend), _model_fn(), _datasets(5))
            for rnd in range(4):
                if backend == "process":
                    self._template_gate(monkeypatch, rnd in fallback_rounds)
                runner.run_round(rnd)
                if backend == "process" and rnd in fallback_rounds:
                    assert runner._pool is None, "fallback must retire the stale pool"
            self._template_gate(monkeypatch, False)
            runner.close()
            return (
                runner.server.global_params.tobytes(),
                [_client_key(c) for c in runner.clients],
                runner.client_steps,
            )

        serial = run("serial")
        assert run("process", fallback_rounds=(1, 2)) == serial

    def test_hier_fallback_rounds_stay_bitwise(self, monkeypatch):
        """Same contract for per-edge pools: an edge whose round falls back
        in-process retires its pool and the run stays bitwise serial."""

        def run(backend, fallback_rounds=()):
            cfg = _config("iiadmm", backend, topology="edges:2")
            runner = build_hier_federation(cfg, _seeded_model_fn(), _datasets(6))
            for rnd in range(3):
                if backend == "process":
                    self._template_gate(monkeypatch, rnd in fallback_rounds)
                runner.run_round(rnd)
                if backend == "process" and rnd in fallback_rounds:
                    assert all(e._pool is None for e in runner.edges)
            self._template_gate(monkeypatch, False)
            runner.close()
            duals = []
            if hasattr(runner.edges[0].server, "duals"):
                duals = [
                    (edge.edge_id, cid, edge.server.duals[cid].tobytes())
                    for edge in runner.edges
                    for cid in edge.shard
                ]
            return (
                runner.server.global_params.tobytes(),
                [(e.edge_id, e.server.global_params.tobytes()) for e in runner.edges],
                duals,
            )

        serial = run("serial")
        assert run("process", fallback_rounds=(1,)) == serial


# ---------------------------------------------------- bugfix regression sweep
class TestWorkerPoolBugfixes:
    def test_negative_worker_count_raises(self):
        """Bugfix 1: a negative worker count is a caller error, not a silent
        clamp to 1 — at the shared helper and at every runner entry."""
        with pytest.raises(ValueError, match="worker count"):
            resolve_workers(-1)
        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert resolve_workers(3) == 3

        runner = build_federation(_config("fedavg", "thread"), _model_fn(), _datasets(3))
        with pytest.raises(ValueError, match="worker count"):
            FederatedRunner(runner.server, clients=runner.clients, max_workers=-2)

    def test_executor_sized_by_participants_not_population(self):
        """Bugfix 2: the thread pool is sized by the clients actually running
        this round (here shrunk by crashes), not the full population."""
        cfg = replace(_config("fedavg", "thread"), parallel_clients=8)
        runner = build_federation(cfg, _model_fn(), _datasets(6))
        runner.communicator.install_faults(FaultPlan(seed=0, client_crashes={0: (1, 2)}))
        runner.run_round(0)  # run() would tear the executor down in close()
        assert runner._executor is not None
        participants = len(runner.history.rounds[0].participating_clients)
        assert participants == 4  # 6 clients minus the two crashed
        assert runner._executor._max_workers == participants
        runner.close()

    def test_client_steps_count_survivors_only(self):
        """Bugfix 3: clients felled by faults mid-round contribute no
        client_steps — the throughput metric counts aggregated work only."""
        datasets = _datasets(4)

        clean = build_federation(_config("fedavg", "serial"), _model_fn(), datasets)
        clean.run(1)
        per_client = {c.client_id: count_client_steps(c) for c in clean.clients}
        assert clean.client_steps == sum(per_client.values())

        # Clients 1 and 2 crash in round 0: they never compute, never count.
        crashed = build_federation(_config("fedavg", "serial"), _model_fn(), datasets)
        crashed.communicator.install_faults(FaultPlan(seed=0, client_crashes={0: (1, 2)}))
        crashed.run(1)
        assert crashed.client_steps == per_client[0] + per_client[3]
