"""Benchmark / reproduction of Section IV-E: heterogeneous architectures.

Paper numbers being reproduced: one FEMNIST local update takes ~6.96 s on an
NVIDIA V100 (Summit) and ~4.24 s on an A100 (Swing), a load-imbalance factor
of ~1.64 between the two institutions of a cross-silo federation.
"""

import pytest

from repro.harness import HeteroSettings, run_hetero


def test_hetero_local_update_times(once):
    result = once(run_hetero, HeteroSettings())
    print("\n" + result.render())
    assert result.times["A100"] == pytest.approx(4.24, rel=0.05)
    assert result.times["V100"] == pytest.approx(6.96, rel=0.05)


def test_hetero_imbalance_ratio_matches_paper(once):
    result = once(run_hetero)
    assert result.ratio == pytest.approx(1.64, rel=0.05)
    # The faster institution idles ~39% of every synchronous round.
    assert 0.3 < result.idle_fraction < 0.5
