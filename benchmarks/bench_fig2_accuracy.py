"""Benchmark / reproduction of Figure 2: test accuracy under ε ∈ {3, 5, 10, ∞}.

Paper shape being reproduced (Section IV-B):

* for every algorithm and dataset, accuracy drops as ε decreases;
* IIADMM achieves better accuracy than ICEADMM on every dataset;
* at the non-private end all algorithms reach comparable (high) accuracy.

Scaled-down settings (synthetic datasets, MLP, fewer rounds) keep the run in
tens of seconds; raise via REPRO_ROUNDS / REPRO_TRAIN_SIZE / REPRO_LOCAL_STEPS
to approach paper scale.
"""

import math

import pytest

from repro.harness import Fig2Settings, run_fig2

SMALL = Fig2Settings.from_env()


@pytest.fixture(scope="module")
def fig2_result():
    # Restrict to two datasets for the module-scoped sweep used by the
    # assertion tests; the full four-dataset grid runs in the bench below.
    settings = Fig2Settings(
        datasets=("mnist", "coronahack"),
        num_rounds=SMALL.num_rounds,
        local_steps=SMALL.local_steps,
        train_size=SMALL.train_size,
        num_clients=SMALL.num_clients,
    )
    return run_fig2(settings)


def test_fig2_full_grid(once):
    """Regenerate the full 3-algorithm x 4-dataset x 4-epsilon grid of Figure 2."""
    settings = Fig2Settings(
        num_rounds=max(4, SMALL.num_rounds // 2),
        local_steps=SMALL.local_steps,
        train_size=max(300, SMALL.train_size // 2),
        femnist_clients=8,
    )
    result = once(run_fig2, settings)
    print("\n" + result.render())
    assert len(result.cells) == len(settings.datasets) * len(settings.algorithms) * len(settings.epsilons)


def test_fig2_accuracy_degrades_with_privacy(fig2_result, once):
    """Paper: 'test accuracy decreases as epsilon decreases' for every algorithm."""
    once(fig2_result.accuracy_matrix, "mnist")
    print("\n" + fig2_result.render())
    for dataset in ("mnist", "coronahack"):
        for algorithm in ("fedavg", "iceadmm", "iiadmm"):
            acc = fig2_result.accuracy_matrix(dataset)[algorithm]
            assert acc[3.0] <= acc[math.inf] + 0.05, (
                f"{algorithm} on {dataset}: eps=3 accuracy {acc[3.0]} should not beat non-private {acc[math.inf]}"
            )


def test_fig2_iiadmm_beats_iceadmm(fig2_result, once):
    """Paper: 'IIADMM provides better test accuracy [than ICEADMM] in all datasets considered'."""
    once(fig2_result.accuracy_matrix, "mnist")
    for dataset in ("mnist", "coronahack"):
        matrix = fig2_result.accuracy_matrix(dataset)
        ii = sum(matrix["iiadmm"].values())
        ice = sum(matrix["iceadmm"].values())
        assert ii >= ice - 0.05, f"IIADMM ({ii}) should be at least as accurate as ICEADMM ({ice}) on {dataset}"


def test_fig2_nonprivate_accuracy_high(fig2_result, once):
    """All three algorithms learn the task when privacy is off."""
    once(fig2_result.accuracy_matrix, "coronahack")
    for dataset in ("mnist", "coronahack"):
        matrix = fig2_result.accuracy_matrix(dataset)
        for algorithm, accs in matrix.items():
            assert accs[math.inf] > 0.6, f"{algorithm} failed to learn {dataset}: {accs[math.inf]}"
