"""Benchmark / reproduction of Figure 3: strong scaling of PPFL on Summit.

Paper shape being reproduced (Section IV-C):

* Figure 3a — near-ideal speedup at small process counts, with the speedup
  falling increasingly short of ideal as the number of MPI processes grows;
* Figure 3b — the percentage of the local-update time spent in MPI.gather()
  grows with the number of processes (≈5% at 5 processes, tens of percent at
  203), because the collective does not scale as well as the local compute;
* the per-rank payload shrinks by >40x from 5 to 203 processes, but the
  gather time shrinks by a much smaller factor.
"""

import pytest

from repro.harness import ScalingSettings, run_scaling

SETTINGS = ScalingSettings(num_rounds=3)


@pytest.fixture(scope="module")
def scaling_result():
    return run_scaling(SETTINGS)


def test_fig3_scaling_series(once):
    result = once(run_scaling, SETTINGS)
    print("\n" + result.render())
    assert [p.num_processes for p in result.points] == list(SETTINGS.process_counts)


def test_fig3a_speedup_monotone_but_subideal(scaling_result, once):
    """Speedup grows with processes but falls short of ideal at high counts."""
    procs, speedups = once(scaling_result.speedups)
    assert all(b > a for a, b in zip(speedups, speedups[1:])), "speedup must increase with processes"
    # Near-ideal at the second point (paper: 'almost perfect scaling with a
    # smaller number of MPI processes').
    p1 = scaling_result.points[1]
    assert p1.speedup > 0.8 * p1.ideal_speedup
    # Clearly sub-ideal at 203 processes.
    p_last = scaling_result.points[-1]
    assert p_last.speedup < 0.75 * p_last.ideal_speedup


def test_fig3b_gather_percentage_grows(scaling_result, once):
    """The MPI.gather share of the round grows as processes increase."""
    once(scaling_result.gather_percentages)
    first = scaling_result.points[0]
    last = scaling_result.points[-1]
    assert first.gather_percentage < 12.0
    assert last.gather_percentage > 2 * first.gather_percentage


def test_fig3_comm_shrinks_slower_than_payload(scaling_result, once):
    """Paper: payload per rank shrinks >40x but gather time shrinks much less."""
    once(scaling_result.point, 5)
    first = scaling_result.point(5)
    last = scaling_result.point(203)
    payload_ratio = (203 / 5)  # clients per rank 41 -> 1
    gather_ratio = first.avg_gather_seconds / last.avg_gather_seconds
    assert payload_ratio > 40
    assert gather_ratio < payload_ratio / 2, (
        f"gather time ratio {gather_ratio:.1f} should be far below the payload ratio {payload_ratio:.1f}"
    )


def test_fig3_compute_scales_nearly_perfectly(scaling_result, once):
    """Paper: 'the compute time shows perfect scaling'."""
    once(scaling_result.point, 203)
    first = scaling_result.point(5)
    last = scaling_result.point(203)
    compute_ratio = first.avg_compute_seconds / last.avg_compute_seconds
    assert compute_ratio == pytest.approx(203 / 5, rel=0.15)
