"""Benchmark / reproduction of the IIADMM communication-reduction claim.

Sections III-A and IV-D: ICEADMM transmits primal *and* dual vectors from
every client every round, whereas IIADMM (like FedAvg) transmits only the
primal — a 2x reduction in uplink volume, which is the paper's headline
algorithmic contribution.
"""

import pytest

from repro.harness import CommVolumeSettings, run_comm_volume


def test_comm_volume_per_round(once):
    result = once(run_comm_volume, CommVolumeSettings())
    print("\n" + result.render())
    assert result.uplink_ratio("iceadmm", "iiadmm") == pytest.approx(2.0)
    assert result.uplink_ratio("fedavg", "iiadmm") == pytest.approx(1.0)


def test_downlink_identical_across_algorithms(once):
    result = once(run_comm_volume, CommVolumeSettings(num_rounds=1))
    downs = {r.downlink_bytes_per_client_round for r in result.rows}
    assert len(downs) == 1, "all algorithms broadcast the same global model"
