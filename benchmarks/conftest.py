"""Shared pytest-benchmark configuration for the paper-reproduction benches.

Every benchmark regenerates one table or figure of the APPFL paper (see
DESIGN.md's per-experiment index) and prints the reproduced rows/series so the
``--benchmark-only`` run doubles as the experiment report.  Paper-scale runs
are much larger; these benches default to a scaled-down regime controlled by
the ``REPRO_*`` environment variables.
"""

import pytest


def pytest_configure(config):
    # Benchmarks are single-shot experiments, not micro-benchmarks: one round
    # with one iteration each is what we want by default.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (experiments, not micro-benchmarks)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
