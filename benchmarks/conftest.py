"""Shared pytest-benchmark configuration for the paper-reproduction benches.

Every benchmark regenerates one table or figure of the APPFL paper (see
DESIGN.md's per-experiment index) and prints the reproduced rows/series so the
``--benchmark-only`` run doubles as the experiment report.  Paper-scale runs
are much larger; these benches default to a scaled-down regime controlled by
the ``REPRO_*`` environment variables.

``python -m pytest benchmarks -q`` runs everything in *smoke mode* (small
workloads, seeded): each bench executes end to end, and the hot-path bench
writes/updates ``BENCH_hotpath.json`` at the repo root through the
:func:`hotpath_store` fixture.  When a recorded measurement already exists,
the run fails on a >20% drop in the baseline-relative speedup (both sides
are measured in the same session, so machine-wide load cancels out) or on an
outright collapse of absolute rounds/sec; the recorded baseline is only
updated by runs that pass the gate.  Set ``REPRO_SMOKE=0`` for larger runs.
"""

import json
import os
from pathlib import Path
from types import SimpleNamespace

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
HOTPATH_PATH = REPO_ROOT / "BENCH_hotpath.json"

#: tolerated fractional drop in the baseline-relative speedup before failing
REGRESSION_TOLERANCE = 0.20
#: tolerated fractional drop in absolute rounds/sec (wide: shared hosts show
#: up to ~2x load swings that affect baseline and optimized alike)
ABSOLUTE_TOLERANCE = 0.60


def pytest_configure(config):
    # Benchmarks are single-shot experiments, not micro-benchmarks: one round
    # with one iteration each is what we want by default.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False
    # Default every bench to smoke mode so a plain `pytest benchmarks -q`
    # stays fast; REPRO_SMOKE=0 (or explicit REPRO_* overrides) scale up.
    os.environ.setdefault("REPRO_SMOKE", "1")


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (experiments, not micro-benchmarks)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


@pytest.fixture(scope="session")
def hotpath_store():
    """Read/compare/update access to the recorded hot-path measurements.

    ``BENCH_hotpath.json`` holds the synchronous rounds/sec record at the top
    level plus an ``"async"`` section with the event-driven scenario's
    events/sec, a ``"codec"`` section with the wire-codec measurements
    (encode/decode MB/s and bytes-per-round/wire-reduction on the Fig. 2
    workload), a ``"scale"`` section with the client-virtualization
    gauges (clients/GB of spilled state, materialise/evict µs), a
    ``"batched"`` section with the batched-execution throughput
    (client-steps/sec at cohort sizes B in {1, 32, 256} and the B=256/B=1
    speedup), a ``"hier"`` section with the hierarchical fan-in
    measurements (root packets per round, fan-in reduction, root-ingest
    packets/sec), and a ``"multicore"`` section with the process-backend
    rounds/sec sweep over worker counts {1, 2, 4} on the Fig. 2 and scale/
    workloads.  Every gate
    tolerates a missing file *or* section — a first run records a fresh
    baseline instead of KeyError-ing.  ``check_and_update(record)`` gates the sync record against
    the previously recorded run — failing on a ``REGRESSION_TOLERANCE`` drop
    in the load-invariant speedup ratio, or an ``ABSOLUTE_TOLERANCE`` collapse
    in raw rounds/sec (which catches regressions shared by both
    configurations).  ``check_and_update_async(record)`` gates the async
    section on an events/sec collapse; ``check_and_update_codec(record)``
    gates the codec section on an encode-throughput collapse or a
    wire-reduction regression (byte counts are deterministic, so that arm
    uses the tight tolerance).  All merge into the existing file (each
    preserves the others' sections) and only write when their gate passes,
    so a regressed run cannot lower the bar for its own re-run.
    """

    def load():
        if HOTPATH_PATH.exists():
            return json.loads(HOTPATH_PATH.read_text())
        return None

    def _merge_write(update):
        data = load() or {}
        data.update(update)
        HOTPATH_PATH.write_text(json.dumps(data, indent=2) + "\n")

    def check_and_update(record):
        previous = load()
        if previous and previous.get("workload") != record.get("workload"):
            # Different REPRO_* sizing: absolute numbers are not comparable;
            # treat as a fresh baseline rather than a regression.
            previous = None
        # Every lookup below tolerates a missing/partial section: on a first
        # run (or a hand-pruned BENCH_hotpath.json) there is simply no gate,
        # never a KeyError.
        old_rps = ((previous or {}).get("optimized") or {}).get("rounds_per_sec")
        old_speedup = (previous or {}).get("speedup")
        failure = None
        if old_rps and old_speedup and os.environ.get("REPRO_BENCH_ACCEPT", "0") != "1":
            new_rps = record["optimized"]["rounds_per_sec"]
            new_speedup = record["speedup"]
            if new_speedup < (1.0 - REGRESSION_TOLERANCE) * old_speedup:
                # The speedup ratio is measured fresh each session (baseline and
                # optimized under the same machine load), so a drop here is a
                # genuine optimized-path regression, not a busy host.
                failure = (
                    f"speedup regressed {old_speedup:.2f}x -> {new_speedup:.2f}x "
                    f"(>{REGRESSION_TOLERANCE:.0%})"
                )
            elif new_rps < (1.0 - ABSOLUTE_TOLERANCE) * old_rps:
                # A slowdown shared by baseline and optimized keeps the ratio
                # intact; this arm catches such collapses.  Its tolerance is
                # wide because up to ~2x machine-load swings have been observed
                # on shared hosts.
                failure = (
                    f"rounds/sec collapsed {old_rps:.4f} -> {new_rps:.4f} "
                    f"(>{ABSOLUTE_TOLERANCE:.0%} even allowing for machine load)"
                )
        if failure is None:
            # Only record the new measurement when it passes the gate, so a
            # regressed run cannot ratchet the baseline down for re-runs.
            _merge_write(record)
        else:
            pytest.fail(
                "hot-path throughput regression: " + failure +
                " — BENCH_hotpath.json keeps the previous baseline; "
                "set REPRO_BENCH_ACCEPT=1 to accept the new numbers"
            )

    def check_and_update_async(record):
        previous = (load() or {}).get("async") or None
        if previous and previous.get("workload") != record.get("workload"):
            previous = None
        old_eps = (previous or {}).get("events_per_sec")
        if (
            old_eps
            and os.environ.get("REPRO_BENCH_ACCEPT", "0") != "1"
            and record["events_per_sec"] < (1.0 - ABSOLUTE_TOLERANCE) * old_eps
        ):
            pytest.fail(
                "async event-loop throughput regression: events/sec collapsed "
                f"{old_eps:.1f} -> {record['events_per_sec']:.1f} "
                f"(>{ABSOLUTE_TOLERANCE:.0%} even allowing for machine load) — "
                "BENCH_hotpath.json keeps the previous baseline; "
                "set REPRO_BENCH_ACCEPT=1 to accept the new numbers"
            )
        _merge_write({"async": record})

    def check_and_update_codec(record):
        previous = (load() or {}).get("codec") or None
        if previous and previous.get("workload") != record.get("workload"):
            previous = None
        accept = os.environ.get("REPRO_BENCH_ACCEPT", "0") == "1"
        failure = None
        old_reduction = (previous or {}).get("wire_reduction")
        old_mbps = (previous or {}).get("encode_mb_per_sec")
        if old_reduction and not accept and record["wire_reduction"] < (1.0 - REGRESSION_TOLERANCE) * old_reduction:
            # Byte counts are deterministic — a drop here is a real codec
            # accounting/compression regression, not machine load.
            failure = f"wire reduction regressed {old_reduction:.2f}x -> {record['wire_reduction']:.2f}x"
        elif old_mbps and not accept and record["encode_mb_per_sec"] < (1.0 - ABSOLUTE_TOLERANCE) * old_mbps:
            failure = (
                f"codec encode throughput collapsed {old_mbps:.1f} -> "
                f"{record['encode_mb_per_sec']:.1f} MB/s (>{ABSOLUTE_TOLERANCE:.0%})"
            )
        if failure is not None:
            pytest.fail(
                "wire-codec regression: " + failure +
                " — BENCH_hotpath.json keeps the previous baseline; "
                "set REPRO_BENCH_ACCEPT=1 to accept the new numbers"
            )
        _merge_write({"codec": record})

    def check_and_update_hier(record):
        previous = (load() or {}).get("hier") or None
        if previous and previous.get("workload") != record.get("workload"):
            previous = None
        accept = os.environ.get("REPRO_BENCH_ACCEPT", "0") == "1"
        failure = None
        old_fanin = (previous or {}).get("fanin_reduction")
        old_pps = (previous or {}).get("root_ingest_packets_per_sec")
        if old_fanin and not accept and record["fanin_reduction"] < old_fanin:
            # Packet counts are deterministic — any drop means the hierarchy
            # started leaking per-client traffic past the edges.
            failure = f"fan-in reduction regressed {old_fanin}x -> {record['fanin_reduction']}x"
        elif (
            old_pps
            and not accept
            and record["root_ingest_packets_per_sec"] < (1.0 - ABSOLUTE_TOLERANCE) * old_pps
        ):
            failure = (
                f"root ingest collapsed {old_pps:.1f} -> "
                f"{record['root_ingest_packets_per_sec']:.1f} packets/s (>{ABSOLUTE_TOLERANCE:.0%})"
            )
        if failure is not None:
            pytest.fail(
                "hier fan-in regression: " + failure +
                " — BENCH_hotpath.json keeps the previous baseline; "
                "set REPRO_BENCH_ACCEPT=1 to accept the new numbers"
            )
        _merge_write({"hier": record})

    def check_and_update_faults(record):
        previous = (load() or {}).get("faults") or None
        if previous and previous.get("workload") != record.get("workload"):
            previous = None
        accept = os.environ.get("REPRO_BENCH_ACCEPT", "0") == "1"
        failure = None
        old_rps = ((previous or {}).get("rounds_per_sec_by_crash_rate") or {}).get("0.00", {}).get(
            "rounds_per_sec"
        )
        old_recovery = (previous or {}).get("recovery_ms_per_kill")
        new_rps = record["rounds_per_sec_by_crash_rate"]["0.00"]["rounds_per_sec"]
        if old_rps and not accept and new_rps < (1.0 - ABSOLUTE_TOLERANCE) * old_rps:
            # The 0% arm is armed-but-fault-free: a collapse here means the
            # injection seam itself got expensive on the hot path.
            failure = (
                f"fault-free armed rounds/sec collapsed {old_rps:.2f} -> {new_rps:.2f} "
                f"(>{ABSOLUTE_TOLERANCE:.0%} even allowing for machine load)"
            )
        elif (
            old_recovery
            and not accept
            and record["recovery_ms_per_kill"] > old_recovery / (1.0 - ABSOLUTE_TOLERANCE)
        ):
            failure = (
                f"edge kill+recover cost grew {old_recovery:.3f} -> "
                f"{record['recovery_ms_per_kill']:.3f} ms (>{1.0 / (1.0 - ABSOLUTE_TOLERANCE):.1f}x, "
                "even allowing for machine load)"
            )
        if failure is not None:
            pytest.fail(
                "fault-layer regression: " + failure +
                " — BENCH_hotpath.json keeps the previous baseline; "
                "set REPRO_BENCH_ACCEPT=1 to accept the new numbers"
            )
        _merge_write({"faults": record})

    def check_and_update_scale(record):
        previous = (load() or {}).get("scale") or None
        if previous and previous.get("workload") != record.get("workload"):
            previous = None
        accept = os.environ.get("REPRO_BENCH_ACCEPT", "0") == "1"
        failure = None
        old_cpg = (previous or {}).get("clients_per_gb")
        old_mat = (previous or {}).get("materialize_us")
        if old_cpg and not accept and record["clients_per_gb"] < (1.0 - REGRESSION_TOLERANCE) * old_cpg:
            # Blob sizes are deterministic — fewer clients/GB means the state
            # blobs genuinely grew, not that the machine was busy.
            failure = f"clients/GB regressed {old_cpg} -> {record['clients_per_gb']}"
        elif (
            old_mat
            and not accept
            and record["materialize_us"] > old_mat / (1.0 - ABSOLUTE_TOLERANCE)
        ):
            failure = (
                f"materialise cost grew {old_mat:.1f} -> "
                f"{record['materialize_us']:.1f} µs/client (>{1.0 / (1.0 - ABSOLUTE_TOLERANCE):.1f}x, "
                "even allowing for machine load)"
            )
        if failure is not None:
            pytest.fail(
                "client-virtualization regression: " + failure +
                " — BENCH_hotpath.json keeps the previous baseline; "
                "set REPRO_BENCH_ACCEPT=1 to accept the new numbers"
            )
        _merge_write({"scale": record})

    def check_and_update_batched(record):
        previous = (load() or {}).get("batched") or None
        if previous and previous.get("workload") != record.get("workload"):
            previous = None
        accept = os.environ.get("REPRO_BENCH_ACCEPT", "0") == "1"
        failure = None
        old_speedup = (previous or {}).get("speedup_b256")
        old_sps = ((previous or {}).get("client_steps_per_sec_by_batch") or {}).get(
            "256", {}
        ).get("client_steps_per_sec")
        new_sps = record["client_steps_per_sec_by_batch"]["256"]["client_steps_per_sec"]
        if (
            old_speedup
            and not accept
            and record["speedup_b256"] < (1.0 - REGRESSION_TOLERANCE) * old_speedup
        ):
            # Both sides of the B=256/B=1 ratio are measured in the same
            # session, so a drop here is a genuine batched-kernel regression,
            # not machine load.
            failure = (
                f"batched speedup regressed {old_speedup:.2f}x -> "
                f"{record['speedup_b256']:.2f}x (>{REGRESSION_TOLERANCE:.0%})"
            )
        elif old_sps and not accept and new_sps < (1.0 - ABSOLUTE_TOLERANCE) * old_sps:
            failure = (
                f"client-steps/sec collapsed {old_sps:.1f} -> {new_sps:.1f} "
                f"(>{ABSOLUTE_TOLERANCE:.0%} even allowing for machine load)"
            )
        if failure is not None:
            pytest.fail(
                "batched-execution regression: " + failure +
                " — BENCH_hotpath.json keeps the previous baseline; "
                "set REPRO_BENCH_ACCEPT=1 to accept the new numbers"
            )
        _merge_write({"batched": record})

    def check_and_update_multicore(record):
        previous = (load() or {}).get("multicore") or None
        if previous and previous.get("workload") != record.get("workload"):
            # Different sizing or a different host core count: the worker
            # sweep is not comparable; record a fresh baseline.
            previous = None
        accept = os.environ.get("REPRO_BENCH_ACCEPT", "0") == "1"
        failure = None
        old_serial = ((previous or {}).get("fig2") or {}).get("serial", {}).get("rounds_per_sec")
        new_serial = record["fig2"]["serial"]["rounds_per_sec"]
        old_speedup = ((previous or {}).get("fig2") or {}).get("4", {}).get("speedup_vs_serial")
        cores = (record.get("workload") or {}).get("cpu_count", 1)
        if old_serial and not accept and new_serial < (1.0 - ABSOLUTE_TOLERANCE) * old_serial:
            failure = (
                f"serial rounds/sec collapsed {old_serial:.4f} -> {new_serial:.4f} "
                f"(>{ABSOLUTE_TOLERANCE:.0%} even allowing for machine load)"
            )
        elif old_speedup and not accept and cores >= 4:
            # The speedup ratio is load-invariant (both sides measured in the
            # same session) but only meaningful with cores to spread over.
            new_speedup = record["fig2"]["4"]["speedup_vs_serial"]
            if new_speedup < (1.0 - REGRESSION_TOLERANCE) * old_speedup:
                failure = (
                    f"4-worker speedup regressed {old_speedup:.2f}x -> "
                    f"{new_speedup:.2f}x (>{REGRESSION_TOLERANCE:.0%})"
                )
        if failure is not None:
            pytest.fail(
                "multicore-backend regression: " + failure +
                " — BENCH_hotpath.json keeps the previous baseline; "
                "set REPRO_BENCH_ACCEPT=1 to accept the new numbers"
            )
        _merge_write({"multicore": record})

    def check_and_update_obs(record):
        previous = (load() or {}).get("obs") or None
        if previous and previous.get("workload") != record.get("workload"):
            previous = None
        accept = os.environ.get("REPRO_BENCH_ACCEPT", "0") == "1"
        old_rps = (previous or {}).get("traced_rounds_per_sec")
        if (
            old_rps
            and not accept
            and record["traced_rounds_per_sec"] < (1.0 - ABSOLUTE_TOLERANCE) * old_rps
        ):
            pytest.fail(
                "obs tracer regression: traced rounds/sec collapsed "
                f"{old_rps:.4f} -> {record['traced_rounds_per_sec']:.4f} "
                f"(>{ABSOLUTE_TOLERANCE:.0%} even allowing for machine load) — "
                "BENCH_hotpath.json keeps the previous baseline; "
                "set REPRO_BENCH_ACCEPT=1 to accept the new numbers"
            )
        _merge_write({"obs": record})

    return SimpleNamespace(
        path=HOTPATH_PATH,
        load=load,
        check_and_update=check_and_update,
        check_and_update_async=check_and_update_async,
        check_and_update_codec=check_and_update_codec,
        check_and_update_scale=check_and_update_scale,
        check_and_update_batched=check_and_update_batched,
        check_and_update_hier=check_and_update_hier,
        check_and_update_faults=check_and_update_faults,
        check_and_update_obs=check_and_update_obs,
        check_and_update_multicore=check_and_update_multicore,
    )
