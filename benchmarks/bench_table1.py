"""Benchmark / reproduction of Table I: FL framework capability comparison."""

from repro.harness import PAPER_TABLE1, render_table1, verify_appfl_column


def test_table1_capability_matrix(once):
    """Reproduce Table I and verify the APPFL column against this package."""
    table = once(render_table1)
    print("\n" + table)
    observed = verify_appfl_column()
    expected = PAPER_TABLE1["APPFL"]
    assert observed == expected, f"APPFL capability column mismatch: {observed} vs {expected}"
