"""Hot-path throughput benchmark: rounds/sec of the Fig. 2 MNIST-CNN workload.

Measures end-to-end federated-training throughput (rounds per second) and
per-phase wall-clock timings (local update, serialize = broadcast + gather,
aggregate, evaluate) for two configurations of the same workload:

* **baseline** — the seed-equivalent implementation: ``engine="copy"``
  (per-batch flatten/unflatten round trips), float64, serial clients, and the
  seed's original conv/pool kernels (``nn.functional.legacy_kernels``);
* **optimized** — the flat-parameter engine: zero-copy parameter/gradient
  views, float32 pipeline, and parallel client execution
  (``parallel_clients=0`` = one worker per core; on a single-core host this
  resolves to serial, where threading would only add overhead).

A third bench measures the wire-codec stack: bytes-per-round of
``delta|int8`` versus the identity codec on the same workload (the paper's
communication axis, now measured rather than synthetic) plus raw
encode/decode MB/s, recorded into the ``"codec"`` section.

Results are written to ``BENCH_hotpath.json`` at the repo root so future PRs
have a perf trajectory; the conftest-provided ``hotpath_store`` fixture fails
the run when throughput regresses >20% against the recorded measurement (with
a speedup-ratio guard so machine-wide load swings do not false-positive —
both sides of the ratio are measured in the same session, so external load
cancels out).

Smoke mode (the default; ``REPRO_SMOKE=0`` for the larger run) keeps the
whole bench in tens of seconds.  Sizing is otherwise controlled by the usual
``REPRO_*`` environment variables.
"""

import contextlib
import json
import os
import time

import numpy as np

from repro import nn
from repro.core import FLConfig, build_federation, build_model
from repro.data import load_dataset

SMOKE = os.environ.get("REPRO_SMOKE", "1") != "0"


def _env_int(name, default):
    return int(os.environ.get(name, default))


ROUNDS = _env_int("REPRO_ROUNDS", 2 if SMOKE else 6)
LOCAL_STEPS = _env_int("REPRO_LOCAL_STEPS", 2 if SMOKE else 3)
TRAIN_SIZE = _env_int("REPRO_TRAIN_SIZE", 384 if SMOKE else 600)
TEST_SIZE = _env_int("REPRO_TEST_SIZE", 128 if SMOKE else 200)
NUM_CLIENTS = _env_int("REPRO_CLIENTS", 4)
REPEATS = _env_int("REPRO_BENCH_REPEATS", 2)

WORKLOAD = {
    "dataset": "mnist",
    "model": "cnn",
    "algorithm": "iiadmm",
    "num_clients": NUM_CLIENTS,
    "rounds_per_measurement": ROUNDS,
    "local_steps": LOCAL_STEPS,
    "batch_size": 64,
    "train_size": TRAIN_SIZE,
    "test_size": TEST_SIZE,
    "smoke": SMOKE,
}


def _build_runner(engine, dtype, parallel_clients, codec="identity", execution_backend="thread"):
    clients, test, spec = load_dataset(
        "mnist",
        num_clients=NUM_CLIENTS,
        train_size=TRAIN_SIZE,
        test_size=TEST_SIZE,
        seed=0,
    )
    config = FLConfig(
        algorithm="iiadmm",
        num_rounds=ROUNDS,
        local_steps=LOCAL_STEPS,
        batch_size=64,
        rho=10.0,
        zeta=10.0,
        seed=0,
        engine=engine,
        dtype=dtype,
        parallel_clients=parallel_clients,
        codec=codec,
        execution_backend=execution_backend,
    )
    model_fn = lambda: build_model(
        "cnn", spec.image_shape, spec.num_classes, rng=np.random.default_rng(42)
    )
    return build_federation(config, model_fn, clients, test)


def _measure(engine, dtype, parallel_clients, legacy=False):
    """Best-of-``REPEATS`` throughput measurement of one configuration."""
    best = None
    for _ in range(max(1, REPEATS)):
        runner = _build_runner(engine, dtype, parallel_clients)
        ctx = nn.functional.legacy_kernels() if legacy else contextlib.nullcontext()
        start = time.perf_counter()
        with ctx:
            history = runner.run()
        elapsed = time.perf_counter() - start
        rps = ROUNDS / elapsed
        if best is None or rps > best["rounds_per_sec"]:
            phases = dict(runner.phase_seconds)
            best = {
                "engine": engine,
                "dtype": dtype,
                "parallel_clients": parallel_clients,
                "legacy_kernels": legacy,
                "rounds": ROUNDS,
                "seconds": round(elapsed, 4),
                "rounds_per_sec": round(rps, 4),
                "final_accuracy": history.final_accuracy,
                "phase_seconds": {
                    "local_update": round(phases["local_update"], 4),
                    "serialize": round(phases["broadcast"] + phases["gather"], 4),
                    "aggregate": round(phases["aggregate"], 4),
                    "evaluate": round(phases["evaluate"], 4),
                },
            }
    return best


def test_hotpath_speedup(hotpath_store):
    """Flat engine + float32 + parallel clients vs the seed-equivalent baseline.

    The paper's throughput story (Figures 3-4) depends entirely on how fast a
    client round executes; this bench asserts the flat-parameter engine
    delivers >=3x rounds/sec on the Fig. 2 MNIST-CNN workload and records the
    trajectory in BENCH_hotpath.json.
    """
    baseline = _measure("copy", "float64", 1, legacy=True)
    optimized = _measure("flat", "float32", 0)
    speedup = optimized["rounds_per_sec"] / baseline["rounds_per_sec"]

    record = {
        "workload": WORKLOAD,
        "baseline": baseline,
        "optimized": optimized,
        "speedup": round(speedup, 3),
    }
    print("\nhotpath: " + json.dumps(record, indent=2))

    # Accuracy parity: float32 must learn the same task (loose tolerance; the
    # tight float64 bit-identity check lives in tests/test_flat_engine.py).
    assert abs(optimized["final_accuracy"] - baseline["final_accuracy"]) < 0.15
    assert speedup >= 3.0, f"expected >=3x rounds/sec over the seed baseline, got {speedup:.2f}x"
    # Only a run that met its own bar may update the recorded trajectory.
    hotpath_store.check_and_update(record)


def test_async_events_per_sec(hotpath_store):
    """Event-loop throughput of the asyncfl scenario (events/sec).

    Runs the async_compare FedBuff arm of the Fig. 2 MNIST-CNN workload on a
    heterogeneous device mix and records how many virtual-timeline events
    (dispatch completions + upload arrivals) the runner processes per real
    second — the async counterpart of the rounds/sec figure above, recorded
    into BENCH_hotpath.json's "async" section and gated by the conftest
    store against outright collapses.
    """
    from repro.asyncfl import FedBuffStrategy, UniformSampler, build_async_federation
    from repro.comm import TCPLinkModel
    from repro.simulator import DEVICE_CATALOG

    clients, test, spec = load_dataset(
        "mnist", num_clients=NUM_CLIENTS, train_size=TRAIN_SIZE, test_size=TEST_SIZE, seed=0
    )
    config = FLConfig(
        algorithm="iiadmm",
        num_rounds=ROUNDS,
        local_steps=LOCAL_STEPS,
        batch_size=64,
        rho=10.0,
        zeta=10.0,
        seed=0,
        dtype="float32",
        parallel_clients=0,
    )
    model_fn = lambda: build_model(
        "cnn", spec.image_shape, spec.num_classes, rng=np.random.default_rng(42)
    )
    mix = ("A100", "V100", "CPU")
    devices = [DEVICE_CATALOG[mix[i % len(mix)]] for i in range(NUM_CLIENTS)]
    buffer_size = max(1, NUM_CLIENTS // 2)
    num_rounds = ROUNDS * max(1, NUM_CLIENTS // buffer_size)

    best = None
    for _ in range(max(1, REPEATS)):
        runner = build_async_federation(
            config,
            model_fn,
            clients,
            test,
            strategy=FedBuffStrategy(buffer_size),
            sampler=UniformSampler(NUM_CLIENTS, fraction=0.5, seed=0),
            devices=devices,
            link=TCPLinkModel(),
            concurrency=buffer_size,
        )
        start = time.perf_counter()
        with runner:
            history = runner.run(num_rounds)
        elapsed = time.perf_counter() - start
        eps = runner.events_processed / elapsed
        if best is None or eps > best["events_per_sec"]:
            best = {
                "rounds": len(history),
                "events": runner.events_processed,
                "seconds": round(elapsed, 4),
                "events_per_sec": round(eps, 2),
                "simulated_seconds": round(runner.now, 2),
                "final_accuracy": history.final_accuracy,
                "mean_staleness": round(runner.async_server.mean_staleness(), 3),
            }

    record = {
        "workload": {
            **WORKLOAD,
            "strategy": "fedbuff",
            "buffer_size": buffer_size,
            "client_fraction": 0.5,
            "rounds_per_measurement": num_rounds,
        },
        **best,
    }
    print("\nasync hotpath: " + json.dumps(record, indent=2))
    assert best["events"] >= 2 * num_rounds  # every round takes >= buffer_size arrivals
    hotpath_store.check_and_update_async(record)


def test_codec_wire_reduction(hotpath_store):
    """Wire-codec bench: bytes-per-round reduction + encode/decode MB/s.

    Runs the Fig. 2 MNIST-CNN workload (float64, the paper's numerics) under
    the default identity codec and under ``delta|int8`` — client updates
    encoded against the dispatched global, then int8-quantized — asserting
    the acceptance bar: the compressed run still reaches the identity arm's
    accuracy (loose tolerance at smoke scale) with >= 4x fewer measured
    on-wire bytes.  Also micro-measures the codec stack's encode/decode
    throughput on a model-sized vector.  Everything lands in
    ``BENCH_hotpath.json``'s "codec" section behind the conftest gate.
    """
    from repro.comm import resolve_codec
    from repro.core.base import PRIMAL_KEY

    identity = _build_runner("flat", "float64", 1, codec="identity")
    h_identity = identity.run()
    compressed = _build_runner("flat", "float64", 1, codec="delta|int8")
    h_compressed = compressed.run()

    bytes_identity = h_identity.total_comm_bytes() / ROUNDS
    bytes_codec = h_compressed.total_comm_bytes() / ROUNDS
    reduction = bytes_identity / bytes_codec

    # Encode/decode throughput of the compressed stack on a model-sized vector.
    dim = identity.server.vectorizer.dim
    rng = np.random.default_rng(0)
    ref = rng.standard_normal(dim)
    vec = ref + 0.01 * rng.standard_normal(dim)
    pipeline = resolve_codec("delta|int8")
    reps = 5 if SMOKE else 20
    raw_mb = vec.nbytes / 1e6
    start = time.perf_counter()
    for _ in range(reps):
        packet = pipeline.encode_state({PRIMAL_KEY: vec}, reference={PRIMAL_KEY: ref})
    encode_mbps = reps * raw_mb / (time.perf_counter() - start)
    start = time.perf_counter()
    for _ in range(reps):
        pipeline.decode_state(packet, reference={PRIMAL_KEY: ref})
    decode_mbps = reps * raw_mb / (time.perf_counter() - start)

    record = {
        "workload": {**WORKLOAD, "codec": "delta|int8", "dtype": "float64"},
        "identity_bytes_per_round": int(bytes_identity),
        "codec_bytes_per_round": int(bytes_codec),
        "wire_reduction": round(reduction, 2),
        "identity_accuracy": h_identity.final_accuracy,
        "codec_accuracy": h_compressed.final_accuracy,
        "model_dim": dim,
        "encode_mb_per_sec": round(encode_mbps, 1),
        "decode_mb_per_sec": round(decode_mbps, 1),
    }
    print("\ncodec: " + json.dumps(record, indent=2))

    # Acceptance: target accuracy reached with >= 4x measured byte reduction.
    assert reduction >= 4.0, f"expected >=4x wire-byte reduction, got {reduction:.2f}x"
    assert h_compressed.final_accuracy >= h_identity.final_accuracy - 0.15
    hotpath_store.check_and_update_codec(record)


def test_scale_virtualization(hotpath_store):
    """Client-virtualization gauges: clients/GB + materialize/evict µs.

    Runs one round of the virtual-population workload (tiny per-client MLP
    shards behind a ``ClientStateStore``) and records how many spilled
    clients fit in a GB of blob storage and how many microseconds one
    materialise/evict cycle costs — the scalability counterpart of the
    rounds/sec figure, recorded into BENCH_hotpath.json's "scale" section
    behind the conftest gate.
    """
    from repro.harness.scaling import PopulationSweepSettings, run_population_sweep

    population = 2_000 if SMOKE else 10_000
    live_cap = 64
    settings = PopulationSweepSettings(populations=(population,), live_cap=live_cap)
    point = run_population_sweep(settings).point(population)

    record = {
        "workload": {
            "population": population,
            "live_cap": live_cap,
            "algorithm": settings.algorithm,
            "samples_per_client": settings.samples_per_client,
            "input_dim": settings.input_dim,
            "hidden": settings.hidden,
            "smoke": SMOKE,
        },
        "round_seconds": round(point.round_seconds, 4),
        "clients_per_gb": int(point.clients_per_gb),
        "store_nbytes": point.store_nbytes,
        "materialize_us": round(point.materialize_us, 2),
        "evict_us": round(point.evict_us, 2),
        "peak_live": point.peak_live,
        "peak_rss_mb": round(point.peak_rss_mb, 1),
    }
    print("\nscale: " + json.dumps(record, indent=2))

    # The memory bound is the product contract, not just a perf number.
    assert point.peak_live <= live_cap
    assert point.evictions > 0  # the cap actually forced spills
    hotpath_store.check_and_update_scale(record)


def test_batched_throughput(hotpath_store):
    """Batched multi-client execution: client-steps/sec vs cohort size B.

    The local-update hot path of the scale/ workload is thousands of tiny
    per-client optimizer steps — per-client execution is bound by Python/BLAS
    call overhead, not arithmetic.  ``FLConfig.client_batch`` stacks B
    clients' flat parameter vectors into one ``(B, dim)`` block and runs
    forward/backward/SGD as batched GEMMs (see ``repro.core.batched``),
    bitwise identical to the per-client loop at float64.  This bench runs one
    round of the tiny-MLP virtual-population workload at B in {1, 32, 256}
    (``live_cap=1024`` so B=256 cohorts form whole) and records client
    optimizer steps per wall-clock second of the ``local_update`` phase,
    asserting the acceptance bar: >=10x at B=256 over B=1.  Lands in
    ``BENCH_hotpath.json``'s "batched" section behind the conftest gate.
    """
    from dataclasses import replace

    from repro.harness.scaling import PopulationSweepSettings, make_population
    from repro.scale import build_virtual_federation

    population = 2_000 if SMOKE else 10_000
    settings = PopulationSweepSettings(populations=(population,))
    datasets, model_fn = make_population(settings, population)
    base_config = FLConfig(
        algorithm=settings.algorithm,
        num_rounds=1,
        local_steps=settings.local_steps,
        batch_size=settings.samples_per_client,
        seed=settings.seed,
    )

    arms = {}
    for client_batch in (1, 32, 256):
        best = None
        for _ in range(max(1, REPEATS)):
            runner = build_virtual_federation(
                replace(base_config, client_batch=client_batch),
                model_fn,
                datasets,
                live_cap=1024,
            )
            runner.run(1)
            local_seconds = runner.phase_seconds["local_update"]
            sps = runner.client_steps / local_seconds
            if best is None or sps > best["client_steps_per_sec"]:
                best = {
                    "client_batch": client_batch,
                    "client_steps": runner.client_steps,
                    "local_update_seconds": round(local_seconds, 4),
                    "client_steps_per_sec": round(sps, 1),
                }
        arms[str(client_batch)] = best

    # Every arm executes the same optimizer steps; only the wall clock moves.
    assert arms["1"]["client_steps"] == arms["32"]["client_steps"] == arms["256"]["client_steps"]
    speedup_32 = arms["32"]["client_steps_per_sec"] / arms["1"]["client_steps_per_sec"]
    speedup_256 = arms["256"]["client_steps_per_sec"] / arms["1"]["client_steps_per_sec"]

    record = {
        "workload": {
            "population": population,
            "live_cap": 1024,
            "algorithm": settings.algorithm,
            "samples_per_client": settings.samples_per_client,
            "input_dim": settings.input_dim,
            "hidden": settings.hidden,
            "local_steps": settings.local_steps,
            "smoke": SMOKE,
        },
        "client_steps_per_sec_by_batch": arms,
        "speedup_b32": round(speedup_32, 2),
        "speedup_b256": round(speedup_256, 2),
    }
    print("\nbatched: " + json.dumps(record, indent=2))

    assert speedup_256 >= 10.0, (
        f"expected >=10x client-steps/sec at client_batch=256 over per-client "
        f"execution, got {speedup_256:.2f}x"
    )
    hotpath_store.check_and_update_batched(record)


def test_hier_root_fanin(hotpath_store):
    """Hierarchical fan-in bench: root-ingest packets/sec + fan-in reduction.

    Runs a sharded federation (tiny per-client MLP shards behind 16 edge
    aggregators) and records (a) the measured fan-in reduction — uplink
    packets the root ingests per round versus what a flat federation would
    send it (one per client) — and (b) how many shard-summary packets per
    second the root can decode and exactly combine, micro-measured over the
    real summary packets of the last round.  Both land in
    ``BENCH_hotpath.json``'s "hier" section behind the conftest gate.
    """
    from repro.core import MLP
    from repro.core.partial import unpack_partial
    from repro.data import TensorDataset
    from repro.hier import build_hier_federation

    population = 512 if SMOKE else 4_096
    num_edges = 16
    rounds = 2
    rng = np.random.default_rng(0)
    shared = TensorDataset(rng.standard_normal((4, 8)), rng.integers(0, 3, 4))
    datasets = [shared] * population
    model_fn = lambda: MLP(8, 3, hidden_sizes=(16,), rng=np.random.default_rng(42))
    config = FLConfig(
        algorithm="iiadmm", num_rounds=rounds, local_steps=1, batch_size=4,
        rho=10.0, zeta=10.0, seed=0, topology=f"edges:{num_edges}",
    )
    runner = build_hier_federation(config, model_fn, datasets, live_cap=16)
    start = time.perf_counter()
    history = runner.run()
    round_seconds = (time.perf_counter() - start) / rounds

    client_up = sum(1 for r in runner.client_communicator.log.records if r.op == "send_local")
    root_up = sum(1 for r in runner.root_communicator.log.records if r.op == "send_local")
    fanin_reduction = client_up / root_up

    # Micro-measure the root's ingest path: decode + exactly combine the E
    # shard-summary packets the edges would send next round (IIADMM folds
    # the shard's real last-known primal/dual state, so these are the true
    # wire payloads, components and all).
    from repro.core.partial import pack_partial

    partials = [edge.server.partial_sum() for edge in runner.edges]
    packets = [runner.exchange.pipeline.encode_state(pack_partial(p)) for p in partials]
    participants = list(range(population))
    reps = 20 if SMOKE else 100
    start = time.perf_counter()
    for _ in range(reps):
        decoded = [unpack_partial(runner.exchange.pipeline.decode_state(pkt)) for pkt in packets]
        runner.server.combine_partials(decoded, participants)
    ingest_pps = reps * num_edges / (time.perf_counter() - start)

    record = {
        "workload": {
            "population": population,
            "edges": num_edges,
            "algorithm": "iiadmm",
            "rounds_per_measurement": rounds,
            "smoke": SMOKE,
        },
        "round_seconds": round(round_seconds, 4),
        "fanin_reduction": round(fanin_reduction, 2),
        "root_packets_per_round": root_up // rounds,
        "root_ingest_packets_per_sec": round(ingest_pps, 1),
        "summary_components_max": max(len(pkt.entries) for pkt in packets),
        "edge_root_bytes_per_round": history.rounds[-1].comm_bytes_by_tier["edge_root"],
        "client_edge_bytes_per_round": history.rounds[-1].comm_bytes_by_tier["client_edge"],
    }
    print("\nhier: " + json.dumps(record, indent=2))

    # The structural contract: the root hears E packets per round, not P.
    assert root_up == num_edges * rounds
    assert fanin_reduction == population / num_edges
    hotpath_store.check_and_update_hier(record)


def test_fault_tolerance_overhead(hotpath_store):
    """Fault-layer bench: rounds/sec under churn + kill/recover latency.

    Two gauges for the self-healing story (ISSUE 6).  First, end-to-end
    rounds/sec of a tiny-MLP flat federation at 0%, 5% and 20% per-(client,
    round) crash rates — the 0% arm is *armed but fault-free*, so its gap to
    the others is the true cost of dying clients (retry accounting, dead
    letters, degraded aggregation), and its own rounds/sec gates the seam's
    overhead against the recorded baseline.  Second, the mean wall-clock
    milliseconds one hierarchical-async edge kill+recover cycle costs
    (serialize slice -> kill -> restore -> replay bookkeeping), measured over
    real kills on a virtual-timeline run.  Both land in
    ``BENCH_hotpath.json``'s "faults" section behind the conftest gate.
    """
    from repro.core import MLP
    from repro.data import TensorDataset
    from repro.faults import FaultPlan
    from repro.hier import RootFedBuff, build_hier_async_federation

    population = 16
    rounds = 3 if SMOKE else 6
    rng = np.random.default_rng(0)
    datasets = [
        TensorDataset(rng.standard_normal((8, 8)), rng.integers(0, 3, 8))
        for _ in range(population)
    ]
    model_fn = lambda: MLP(8, 3, hidden_sizes=(16,), rng=np.random.default_rng(42))

    def flat_config():
        return FLConfig(
            algorithm="fedavg", num_rounds=rounds, local_steps=1, batch_size=4,
            lr=0.05, seed=0,
        )

    churn = {}
    for rate in (0.0, 0.05, 0.20):
        best = None
        for _ in range(max(1, REPEATS)):
            runner = build_federation(flat_config(), model_fn, datasets)
            runner.communicator.install_faults(FaultPlan(seed=0, client_crash_prob=rate))
            start = time.perf_counter()
            history = runner.run()
            elapsed = time.perf_counter() - start
            if best is None or rounds / elapsed > best["rounds_per_sec"]:
                best = {
                    "rounds_per_sec": round(rounds / elapsed, 2),
                    "failed_client_rounds": sum(len(r.failed_clients) for r in history.rounds),
                    "dead_letters": len(runner.communicator.log.dead_letters),
                }
        churn[f"{rate:.2f}"] = best
    assert churn["0.00"]["failed_client_rounds"] == 0
    assert churn["0.20"]["failed_client_rounds"] > 0

    # Kill/recover latency on the hierarchical async runner: enough one-shot
    # kills to average over, spread across the run's event horizon.
    num_edges = 8
    kills = 4 if SMOKE else 8
    hier_config = FLConfig(
        algorithm="fedavg", num_rounds=rounds, local_steps=1, batch_size=4,
        lr=0.05, seed=0, topology=f"edges:{num_edges}",
    )
    probe = build_hier_async_federation(
        hier_config, model_fn, datasets, strategy=RootFedBuff(num_edges)
    )
    probe.run(rounds)
    horizon = max(2 * kills, (probe.events_processed * 2) // 3)
    runner = build_hier_async_federation(
        hier_config, model_fn, datasets, strategy=RootFedBuff(num_edges)
    )
    runner.enable_faults(
        FaultPlan.chaos(0, num_edges, kills, max_event_count=horizon, min_event_count=2)
    )
    runner.run(rounds)
    recoveries = runner.injector.stats.recoveries
    assert recoveries == kills
    recovery_ms = 1e3 * runner.recovery_seconds / recoveries

    record = {
        "workload": {
            "population": population,
            "edges": num_edges,
            "algorithm": "fedavg",
            "rounds_per_measurement": rounds,
            "kills": kills,
            "smoke": SMOKE,
        },
        "rounds_per_sec_by_crash_rate": churn,
        "edge_kills": int(runner.injector.stats.edge_kills),
        "recoveries": int(recoveries),
        "recovery_ms_per_kill": round(recovery_ms, 3),
    }
    print("\nfaults: " + json.dumps(record, indent=2))
    hotpath_store.check_and_update_faults(record)


def test_obs_overhead(hotpath_store, tmp_path):
    """Full-observability overhead on the Fig. 2 hot-path workload.

    The obs contract: disabled observability is free, and the *armed* stack
    — tracer + RunMonitor with the default watchdog set and a JSONL metrics
    stream — costs <5% rounds/sec on the optimized configuration.  Both
    sides are measured best-of-REPEATS in the same session, so machine load
    largely cancels.
    """
    from repro.obs import RunMonitor, Tracer, default_monitors, use_monitor, use_tracer

    def run_once(tracer, monitor):
        runner = _build_runner("flat", "float32", 0)
        start = time.perf_counter()
        with use_tracer(tracer), use_monitor(monitor):
            history = runner.run()
        return ROUNDS / (time.perf_counter() - start), history

    repeats = max(2, REPEATS)
    untraced = 0.0
    untraced_history = None
    for _ in range(repeats):
        rps, history = run_once(None, None)
        if rps > untraced:
            untraced, untraced_history = rps, history
    traced = 0.0
    spans = 0
    samples = 0
    alerts = -1
    traced_history = None
    for i in range(repeats):
        tracer = Tracer()
        monitor = RunMonitor(
            monitors=default_monitors(),
            stream=str(tmp_path / f"bench_stream_{i}.jsonl"),
        )
        rps, history = run_once(tracer, monitor)
        monitor.close()
        if rps > traced:
            traced, spans, traced_history = rps, len(tracer), history
            samples = monitor.report.samples
            alerts = len(monitor.report.alerts)
    overhead_pct = 100.0 * (untraced - traced) / untraced

    record = {
        "workload": WORKLOAD,
        "untraced_rounds_per_sec": round(untraced, 4),
        "traced_rounds_per_sec": round(traced, 4),
        "overhead_pct": round(overhead_pct, 2),
        "trace_records": spans,
        "monitor_samples": samples,
        "monitor_alerts": alerts,
    }
    print("\nobs: " + json.dumps(record, indent=2))

    # The monitoring stack is observational only: the run trains identically.
    assert traced_history.final_accuracy == untraced_history.final_accuracy
    assert spans > 0, "armed tracer recorded nothing on a traced run"
    assert samples == ROUNDS, "the monitor missed round boundaries"
    assert alerts == 0, "watchdogs false-positived on a healthy bench run"
    assert overhead_pct < 5.0, (
        f"full-observability overhead {overhead_pct:.2f}% exceeds the 5% "
        f"budget ({untraced:.4f} -> {traced:.4f} rounds/sec)"
    )
    hotpath_store.check_and_update_obs(record)


def test_multicore_rounds_per_sec(hotpath_store):
    """Process execution backend: rounds/sec vs worker count on two workloads.

    ``FLConfig.execution_backend="process"`` runs each round's local updates
    in spawn-context worker processes over shared-memory arenas (see
    ``repro.mp``), sidestepping the GIL that caps the thread backend on
    CPU-bound numpy workloads.  This bench measures rounds/sec at
    ``parallel_clients`` in {1, 2, 4} against the serial backend on

    * the Fig. 2 MNIST-CNN IIADMM workload (eager clients), and
    * the scale/ tiny-MLP virtual-population workload (store-backed shards),

    and records both series in ``BENCH_hotpath.json``'s "multicore" section.
    The >=1.5x speedup bar at 4 workers only applies on hosts with >=4 cores
    — on fewer cores the numbers are recorded for the trajectory but extra
    processes cannot beat the serial run.  Spawn/IPC overhead is real and
    amortises over round work, so smoke-mode workloads stay modest.
    """
    from repro.core.models import SeededModelFn
    from repro.harness.scaling import PopulationSweepSettings, make_population
    from repro.scale import build_virtual_federation

    cores = os.cpu_count() or 1

    def measure(build):
        best = None
        for _ in range(max(1, REPEATS)):
            runner = build()
            start = time.perf_counter()
            runner.run()
            elapsed = time.perf_counter() - start
            runner.close()
            rps = ROUNDS / elapsed
            if best is None or rps > best:
                best = rps
        return best

    def sweep(build_for):
        serial_rps = measure(lambda: build_for("serial", 1))
        arms = {"serial": {"rounds_per_sec": round(serial_rps, 4)}}
        for workers in (1, 2, 4):
            rps = measure(lambda: build_for("process", workers))
            arms[str(workers)] = {
                "rounds_per_sec": round(rps, 4),
                "speedup_vs_serial": round(rps / serial_rps, 3),
            }
        return arms

    # Fig. 2 workload, eager clients sharded across worker processes.
    fig2 = sweep(lambda backend, workers: _build_runner(
        "flat", "float64", workers, execution_backend=backend
    ))

    # scale/ workload: store-backed population, one store shard per worker.
    population = 64 if SMOKE else 256
    settings = PopulationSweepSettings(populations=(population,))
    datasets, _ = make_population(settings, population)
    scale_model_fn = SeededModelFn(
        "mlp",
        (1, 1, settings.input_dim),
        settings.num_classes,
        seed=settings.seed + 42,
        hidden_sizes=(settings.hidden,),
    )
    scale_config = FLConfig(
        algorithm=settings.algorithm,
        num_rounds=ROUNDS,
        local_steps=settings.local_steps,
        batch_size=settings.samples_per_client,
        seed=settings.seed,
    )

    def build_scale(backend, workers):
        from dataclasses import replace

        return build_virtual_federation(
            replace(scale_config, parallel_clients=workers, execution_backend=backend),
            scale_model_fn,
            datasets,
            live_cap=population,
        )

    scale = sweep(build_scale)

    record = {
        "workload": {**WORKLOAD, "scale_population": population, "cpu_count": cores},
        "fig2": fig2,
        "scale": scale,
    }
    print("\nmulticore: " + json.dumps(record, indent=2))

    if cores >= 4:
        best_speedup = max(fig2["4"]["speedup_vs_serial"], scale["4"]["speedup_vs_serial"])
        assert best_speedup >= 1.5, (
            f"expected >=1.5x rounds/sec at 4 worker processes on a "
            f"{cores}-core host, got {best_speedup:.2f}x"
        )
    hotpath_store.check_and_update_multicore(record)
