"""Ablation benchmarks for the IIADMM design choices called out in DESIGN.md.

* Proximal term ζ: the paper credits the proximal term of Eq. (4) with
  mitigating the impact of the DP noise; the ablation sweeps ζ at a fixed ε
  and checks that some positive ζ beats ζ = 0.
* Batched local updates: IIADMM's batched primal updates versus the
  ICEADMM-style full-batch regime (B_p = 1).
"""

import pytest

from repro.harness import AblationSettings, run_batching_ablation, run_zeta_ablation


def test_zeta_ablation(once):
    result = once(run_zeta_ablation, (0.0, 5.0, 10.0, 25.0), AblationSettings(epsilon=5.0))
    print("\n" + result.render())
    accs = {row.value: row.final_accuracy for row in result.rows}
    # A positive proximal term should not hurt, and typically helps, under DP.
    assert max(accs[5.0], accs[10.0], accs[25.0]) >= accs[0.0] - 0.05


def test_batching_ablation(once):
    result = once(run_batching_ablation, AblationSettings())
    print("\n" + result.render())
    batched = next(r for r in result.rows if "batched" in r.label)
    full = next(r for r in result.rows if "full" in r.label)
    # Batched local updates should learn at least as well per round.
    assert batched.final_accuracy >= full.final_accuracy - 0.1
