"""Benchmark / reproduction of Figure 4: gRPC vs MPI communication times.

Paper shape being reproduced (Section IV-D):

* Figure 4a — over 49 rounds, every client's cumulative gRPC communication
  time is several times (up to ~10x) larger than its MPI time;
* Figure 4b — per-round gRPC times vary wildly between rounds (a factor of
  ~30 between the fastest and slowest round for a given client).
"""

import numpy as np
import pytest

from repro.harness import CommCompareSettings, run_comm_compare

SETTINGS = CommCompareSettings(num_clients=203, num_rounds=50)


@pytest.fixture(scope="module")
def comm_result():
    return run_comm_compare(SETTINGS)


def test_fig4_comparison_report(once):
    result = once(run_comm_compare, CommCompareSettings(num_clients=60, num_rounds=50, seed=1))
    print("\n" + result.render())
    assert len(result.grpc_cumulative) == 60


def test_fig4a_grpc_slower_than_mpi_for_every_client(comm_result, once):
    factors = once(comm_result.slowdown_factors)
    assert np.all(factors > 1.5), "every client should communicate slower over gRPC than MPI"
    assert 3.0 < comm_result.median_slowdown() < 20.0, (
        f"median gRPC/MPI slowdown {comm_result.median_slowdown():.1f} outside the paper's regime (up to ~10x)"
    )


def test_fig4b_round_to_round_spread(comm_result, once):
    """Per-round gRPC times differ by a large factor between rounds (paper: ~30x)."""
    once(comm_result.max_round_spread)
    assert comm_result.max_round_spread() > 8.0
    for box in comm_result.box_stats:
        assert box.q3 > box.q1 > 0
        assert box.maximum > 2 * box.median


def test_fig4_mpi_times_are_consistent_across_rounds(comm_result, once):
    """MPI (RDMA, dedicated fabric) does not show the gRPC jitter."""
    # All MPI per-client cumulative times should be nearly identical.
    once(comm_result.median_slowdown)
    mpi = np.array(list(comm_result.mpi_cumulative.values()))
    assert mpi.std() / mpi.mean() < 0.05
