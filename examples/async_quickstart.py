"""Quickstart for event-driven asynchronous federation.

Runs the same MNIST workload three ways on the asyncfl virtual clock — a
synchronous baseline, FedAsync staleness-weighted mixing, and FedBuff buffered
aggregation — over a heterogeneous fleet (A100 / V100 / CPU clients behind a
TCP link), and prints accuracy against *simulated* wall-clock seconds.

Run:  python examples/async_quickstart.py
"""

import numpy as np

from repro.asyncfl import (
    FedAsyncStrategy,
    FedBuffStrategy,
    SyncRoundStrategy,
    build_async_federation,
)
from repro.comm import TCPLinkModel
from repro.core import FLConfig, MLP
from repro.data import load_dataset
from repro.simulator import DEVICE_CATALOG


def main() -> None:
    # 1. An MNIST-like dataset split across 6 clients of very different speed:
    #    the device mix cycles A100 -> V100 -> CPU (the CPU is ~17x slower).
    clients, test_data, spec = load_dataset("mnist", num_clients=6, train_size=360, test_size=120, seed=0)
    devices = [DEVICE_CATALOG[name] for name in ("A100", "V100", "CPU", "A100", "V100", "CPU")]

    def model_fn():
        return MLP(28 * 28, spec.num_classes, hidden_sizes=(64,), rng=np.random.default_rng(42))

    config = FLConfig(algorithm="fedavg", num_rounds=3, local_steps=2, batch_size=64, lr=0.05, seed=0)

    # 2. Same client-update budget, three orchestration modes.  The sync
    #    baseline blocks every round on the slowest (CPU) client; the async
    #    strategies keep the fast devices busy instead.
    budget = config.num_rounds * len(clients)
    modes = [
        ("sync", SyncRoundStrategy(), config.num_rounds),
        ("fedasync", FedAsyncStrategy(alpha=0.6, staleness="polynomial"), budget),
        ("fedbuff", FedBuffStrategy(buffer_size=3), budget // 3),
    ]
    for name, strategy, rounds in modes:
        # AsyncRunner is a context manager: the client worker pool is released
        # even if a local update raises.
        with build_async_federation(
            config, model_fn, clients, test_data, strategy=strategy, devices=devices, link=TCPLinkModel()
        ) as runner:
            history = runner.run(rounds)
            print(
                f"{name:9s} rounds={len(history):3d}  final accuracy={history.final_accuracy:.3f}  "
                f"simulated wall clock={runner.now:7.2f} s  "
                f"mean staleness={runner.async_server.mean_staleness():.2f}"
            )


if __name__ == "__main__":
    main()
