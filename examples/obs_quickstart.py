"""Quickstart: unified telemetry over a federated run.

Arms a :class:`repro.obs.Tracer` and a :class:`repro.obs.MetricsRegistry`
around a small Figure-2-style workload (FedAvg on synthetic MNIST, 3
rounds), then:

* dumps the span trace as JSONL and Chrome/Perfetto ``trace_event`` JSON,
* dumps the metrics snapshot as JSON,
* renders the terminal run report (the same one
  ``python -m repro.harness.obsreport trace.jsonl`` produces).

The tracer is purely observational — the traced run is bitwise identical
to an untraced one (regression-tested in ``tests/test_obs.py``).

Run:  python examples/obs_quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import FLConfig, MLP, build_federation
from repro.data import load_dataset
from repro.harness.obsreport import render_metrics, render_report
from repro.obs import MetricsRegistry, Tracer, use_tracer


def main() -> None:
    # 1. The Figure 2 workload, scaled to 3 rounds.
    clients, test_data, spec = load_dataset(
        "mnist", num_clients=4, train_size=800, test_size=200, seed=0
    )

    def model_fn():
        return MLP(28 * 28, spec.num_classes, hidden_sizes=(64,), rng=np.random.default_rng(42))

    config = FLConfig(
        algorithm="fedavg", num_rounds=3, local_steps=3, batch_size=64, lr=0.03, seed=0
    )
    runner = build_federation(config, model_fn, clients, test_data)

    # 2. Arm the tracer for the run; library code picks it up via the
    #    context-local handle (no tracer parameters anywhere).
    tracer = Tracer()
    with use_tracer(tracer):
        history = runner.run()
    print(f"final accuracy={history.final_accuracy:.3f}  ({len(tracer)} trace records)\n")

    # 3. Absorb the run's scattered accounting into one metrics snapshot.
    registry = MetricsRegistry(algorithm=config.algorithm, codec=runner.exchange.spec)
    registry.absorb_runner(runner)

    # 4. Export everything.
    out = Path(tempfile.mkdtemp(prefix="repro_obs_"))
    trace_jsonl = tracer.write_jsonl(out / "trace.jsonl")
    trace_perfetto = tracer.write_perfetto(out / "trace_perfetto.json")
    metrics_json = registry.write_snapshot(out / "metrics.json")

    # 5. The terminal run explorer over the records just collected.
    print(render_report(tracer.records, top=3))
    print()
    print(render_metrics(registry.snapshot()))
    print()
    print(f"trace (JSONL):    {trace_jsonl}")
    print(f"trace (Perfetto): {trace_perfetto}")
    print(f"metrics snapshot: {metrics_json}")
    print(
        "\nOpen the Perfetto JSON at https://ui.perfetto.dev (or chrome://tracing):"
        "\none track per lane — runner rounds/waves/phases, per-client local"
        "\nupdates, comm sends, store and checkpoint activity."
    )


if __name__ == "__main__":
    main()
