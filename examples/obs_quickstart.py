"""Quickstart: unified telemetry and live monitoring over a federated run.

Arms the full observability stack around a small Figure-2-style workload
(FedAvg on synthetic MNIST, 3 rounds):

* a :class:`repro.obs.Tracer` collecting spans/events,
* a :class:`repro.obs.RunMonitor` with the default watchdog set
  (convergence stall/divergence, straggler skew, retry/dead-letter rates,
  memory watermarks), streaming per-round metrics snapshots to JSONL and
  serving a live ``/metrics`` + ``/healthz`` endpoint that is scraped
  once mid-example,
* a :class:`repro.obs.PhaseProfiler` capturing a collapsed-stack
  (flamegraph-ready) profile of the local-update phase,

then:

* dumps the span trace as JSONL and Chrome/Perfetto ``trace_event`` JSON,
* dumps the metrics snapshot as JSON and as Prometheus text exposition,
* renders the terminal run report plus the health report.

Everything is purely observational — the monitored run is bitwise
identical to an unmonitored one (regression-tested in
``tests/test_obs.py`` / ``tests/test_obs_live.py``).

Run:  python examples/obs_quickstart.py
"""

import tempfile
import urllib.request
from pathlib import Path

import numpy as np

from repro.core import FLConfig, MLP, build_federation
from repro.data import load_dataset
from repro.harness.obsreport import render_metrics, render_report, render_series
from repro.obs import (
    MetricsRegistry,
    PhaseProfiler,
    RunMonitor,
    Tracer,
    default_monitors,
    lint_exposition,
    load_series,
    render_prometheus,
    use_profiler,
    use_tracer,
)


def main() -> None:
    # 1. The Figure 2 workload, scaled to 3 rounds.
    clients, test_data, spec = load_dataset(
        "mnist", num_clients=4, train_size=800, test_size=200, seed=0
    )

    def model_fn():
        return MLP(28 * 28, spec.num_classes, hidden_sizes=(64,), rng=np.random.default_rng(42))

    config = FLConfig(
        algorithm="fedavg", num_rounds=3, local_steps=3, batch_size=64, lr=0.03, seed=0
    )
    runner = build_federation(config, model_fn, clients, test_data)

    out = Path(tempfile.mkdtemp(prefix="repro_obs_"))

    # 2. Arm the whole stack for the run; library code picks each handle up
    #    via its context-local (no observability parameters anywhere).
    tracer = Tracer()
    monitor = RunMonitor(
        monitors=default_monitors(),
        stream=out / "metrics_series.jsonl",
        serve=True,  # live /metrics + /healthz on a free localhost port
        algorithm=config.algorithm,
    )
    profiler = PhaseProfiler(phases=("local_update",))
    with use_tracer(tracer), monitor, use_profiler(profiler):
        history = runner.run()
        # Scrape the live endpoint the way Prometheus would, mid-session.
        exposition = (
            urllib.request.urlopen(monitor.server.url + "/metrics", timeout=5)
            .read()
            .decode()
        )
    runner.close()
    print(f"final accuracy={history.final_accuracy:.3f}  ({len(tracer)} trace records)\n")

    # 3. Absorb the run's scattered accounting into one metrics snapshot
    #    (includes any process-backend worker telemetry).
    registry = MetricsRegistry(algorithm=config.algorithm, codec=runner.exchange.spec)
    registry.absorb_runner(runner)

    # 4. Export everything.
    trace_jsonl = tracer.write_jsonl(out / "trace.jsonl")
    trace_perfetto = tracer.write_perfetto(out / "trace_perfetto.json")
    metrics_json = registry.write_snapshot(out / "metrics.json")
    prometheus_txt = out / "metrics.prom"
    prometheus_txt.write_text(render_prometheus(registry.snapshot()))
    profile_folded = profiler.write_collapsed(out / "local_update.folded")

    # 5. The terminal run explorer over the records just collected.
    print(render_report(tracer.records, top=3))
    print()
    print(render_metrics(registry.snapshot()))
    print()
    print(render_series(load_series(out / "metrics_series.jsonl")))
    print()
    print(monitor.report.render())
    lint = lint_exposition(exposition)
    print(f"live /metrics scrape: {len(exposition.splitlines())} lines, "
          f"lint {'clean' if not lint else lint}")
    print()
    print(f"trace (JSONL):       {trace_jsonl}")
    print(f"trace (Perfetto):    {trace_perfetto}")
    print(f"metrics snapshot:    {metrics_json}")
    print(f"metrics exposition:  {prometheus_txt}")
    print(f"metrics time series: {out / 'metrics_series.jsonl'}")
    print(f"collapsed profile:   {profile_folded}")
    print(
        "\nOpen the Perfetto JSON at https://ui.perfetto.dev (or chrome://tracing):"
        "\none track per lane — runner rounds/waves/phases, per-client local"
        "\nupdates, comm sends, store and checkpoint activity.  Feed the"
        "\n.folded file to any flamegraph renderer (e.g. flamegraph.pl or"
        "\nspeedscope) for the local-update profile."
    )


if __name__ == "__main__":
    main()
