"""Fault injection and self-healing in one page: kill 2 of 8 edges mid-run.

A real federation loses clients and aggregators constantly; ``repro.faults``
makes that failure reality *deterministic*: a seeded ``FaultPlan`` decides —
as a pure function of (seed, decision key) — which uplinks drop, which
clients die mid-round, and at which processed-event counts whole edge
aggregators are killed.  The runners self-heal: crashed clients are
dead-lettered and the round finalizes with the survivors, and a killed edge
is restored from its last wave-boundary state slice and rejoins the
federation.  The same run, re-seeded identically, fails identically — which
is what lets the chaos harness assert recovery is *bitwise* lossless.

Run:  PYTHONPATH=src python examples/chaos_quickstart.py
"""

import numpy as np

from repro.core import FLConfig
from repro.core.models import MLP
from repro.data import TensorDataset
from repro.faults import FaultPlan
from repro.harness.reporting import format_history
from repro.hier import RootFedBuff, build_hier_async_federation

CLIENTS = 24
EDGES = 8
KILLS = 2
ROUNDS = 4


def make_datasets():
    rng = np.random.default_rng(7)
    teacher = rng.standard_normal((16, 4))

    def shard(n=12):
        x = rng.standard_normal((n, 16))
        return TensorDataset(x, np.argmax(x @ teacher, axis=1))

    return [shard() for _ in range(CLIENTS)], shard(48)


def model_fn():
    return MLP(16, 4, hidden_sizes=(8,), rng=np.random.default_rng(42))


def build(datasets, test):
    config = FLConfig(
        algorithm="fedavg", num_rounds=ROUNDS, local_steps=2, batch_size=4,
        lr=0.05, seed=0, topology=f"edges:{EDGES}",
    )
    return build_hier_async_federation(
        config, model_fn, datasets, test_dataset=test, strategy=RootFedBuff(EDGES)
    )


def main() -> None:
    datasets, test = make_datasets()

    # ---- 1. the crash-free run sets the bar ------------------------------
    baseline = build(datasets, test)
    baseline_history = baseline.run(ROUNDS)
    print(f"crash-free: {len(baseline_history)} rounds, "
          f"final accuracy {baseline_history.final_accuracy:.3f} "
          f"({baseline.events_processed} timeline events)")

    # ---- 2. same run, but 2 of the 8 edges are killed mid-run ------------
    # FaultPlan.chaos draws the (event count, edge id) kill schedule from its
    # own seeded stream; client_crash_prob additionally kills ~5% of
    # (client, round) dispatches on-device.  A killed edge loses its entire
    # in-flight cohort and rolls back to its last flush-boundary slice.
    chaos = build(datasets, test)
    chaos.enable_faults(FaultPlan.chaos(
        seed=0, num_edges=EDGES, kills=KILLS,
        max_event_count=(baseline.events_processed * 2) // 3,
        client_crash_prob=0.05,
    ))
    history = chaos.run(ROUNDS)
    stats = chaos.injector.stats

    # The failed/recovered columns only appear when an injector is armed.
    print("\n" + format_history(history, title="under churn (failed clients / recovered edges):"))
    print(f"\nfault stats          : {stats.as_dict()}")
    print(f"edge kills recovered : {stats.recoveries}/{KILLS} "
          f"({1e3 * chaos.recovery_seconds / max(1, stats.recoveries):.2f} ms/kill)")
    print(f"final accuracy       : {history.final_accuracy:.3f} "
          f"(crash-free bar {baseline_history.final_accuracy:.3f})")
    assert stats.recoveries == KILLS
    assert len(history) == ROUNDS


if __name__ == "__main__":
    main()
