"""Virtual populations in one page: 10,000 clients in bounded memory.

A materialised client is heavy (model replica + flat gradient buffers +
loader); a population of them makes RSS grow linearly.  ``repro.scale``
virtualises the population: a ``ClientStateStore`` keeps every client's
persistent state (ADMM duals, RNG, round counter) as a compact blob and only
materialises the ``live_cap`` clients currently running, LRU-spilling the
rest.  ``RunCheckpoint`` snapshots a whole run — sync or async — so a killed
job resumes **bit-identically**.

Run:  PYTHONPATH=src python examples/scale_quickstart.py
"""

import time

import numpy as np

from repro.asyncfl import FedBuffStrategy, UniformSampler
from repro.core import FLConfig
from repro.core.models import MLP
from repro.data import TensorDataset
from repro.scale import RunCheckpoint, build_virtual_async_federation, build_virtual_federation

POPULATION = 10_000
LIVE_CAP = 64


def make_datasets():
    """Tiny per-client shards (cross-device clients hold little data)."""
    datasets = []
    for cid in range(POPULATION):
        rng = np.random.default_rng(1_000 + cid)
        x = rng.standard_normal((4, 16))
        y = rng.integers(0, 4, size=4)
        datasets.append(TensorDataset(x, y))
    return datasets


def model_fn():
    return MLP(16, 4, hidden_sizes=(8,), rng=np.random.default_rng(42))


def main() -> None:
    datasets = make_datasets()

    # ---- 1. synchronous FedAvg over all 10k clients, 64 live at a time ----
    config = FLConfig(algorithm="fedavg", num_rounds=1, local_steps=1, batch_size=4, seed=0)
    runner = build_virtual_federation(config, model_fn, datasets, live_cap=LIVE_CAP)
    start = time.perf_counter()
    runner.run(1)
    stats = runner._store.stats
    print(f"sync FedAvg: {POPULATION} clients in {time.perf_counter() - start:.1f}s")
    print(f"  peak live clients : {stats.peak_live} (cap {LIVE_CAP})")
    print(f"  materialisations  : {stats.materializations}, evictions: {stats.evictions}")
    print(f"  spilled store     : {runner._store.store_nbytes / 1e6:.1f} MB "
          f"(~{runner._store.store_nbytes // POPULATION} B/client)")

    # ---- 2. async IIADMM: clients materialise only when sampled ----------
    config = FLConfig(algorithm="iiadmm", num_rounds=1, local_steps=1, batch_size=4,
                      rho=10.0, zeta=10.0, seed=0)
    runner = build_virtual_async_federation(
        config, model_fn, datasets, live_cap=LIVE_CAP,
        strategy=FedBuffStrategy(32),
        sampler=UniformSampler(POPULATION, fraction=0.005, seed=0),
        concurrency=32,
    )
    runner.run(4)
    print(f"\nasync IIADMM (FedBuff/32, 0.5% sampled): "
          f"{runner._store.stats.materializations} of {POPULATION} clients ever materialised")

    # ---- 3. checkpoint mid-run, rebuild from scratch, resume -------------
    blob = RunCheckpoint.save(runner).to_bytes()
    resumed = build_virtual_async_federation(
        config, model_fn, datasets, live_cap=LIVE_CAP,
        strategy=FedBuffStrategy(32),
        sampler=UniformSampler(POPULATION, fraction=0.005, seed=0),
        concurrency=32,
    )
    RunCheckpoint.from_bytes(blob).restore(resumed)
    resumed.run(2)
    print(f"checkpoint: {len(blob) / 1e6:.1f} MB blob; resumed to "
          f"{len(resumed.history)} rounds at virtual t={resumed.now:.2f}s "
          f"(bit-identical to an uninterrupted run)")


if __name__ == "__main__":
    main()
