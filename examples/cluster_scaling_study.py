"""Cluster-scale simulation study: strong scaling and gRPC vs MPI (Figures 3 & 4).

Drives the cluster/device simulator and the two communication cost models to
reproduce the paper's Summit experiments, then prints the figure series as
tables.  Also demonstrates running an actual (small) federation through the
simulated MPI and gRPC communicators to compare end-to-end round times.

Run:  python examples/cluster_scaling_study.py
"""

import numpy as np

from repro.comm import GRPCSimCommunicator, MPISimCommunicator
from repro.core import FLConfig, MLP, build_federation
from repro.data import load_dataset
from repro.harness import (
    CommCompareSettings,
    ScalingSettings,
    run_comm_compare,
    run_hetero,
    run_scaling,
)


def figure3() -> None:
    print("=" * 72)
    result = run_scaling(ScalingSettings(num_rounds=3))
    print(result.render())


def figure4() -> None:
    print("=" * 72)
    result = run_comm_compare(CommCompareSettings(num_clients=60, num_rounds=50))
    print(result.render())
    print(f"median gRPC/MPI slowdown: {result.median_slowdown():.1f}x (paper: up to ~10x)")


def heterogeneity() -> None:
    print("=" * 72)
    print(run_hetero().render())


def end_to_end_with_simulated_transports() -> None:
    """Train a real (small) federation over each simulated transport."""
    print("=" * 72)
    clients, test_data, spec = load_dataset("mnist", num_clients=8, train_size=400, test_size=100, seed=0)

    def model_fn():
        return MLP(28 * 28, spec.num_classes, hidden_sizes=(32,), rng=np.random.default_rng(5))

    config = FLConfig(algorithm="iiadmm", num_rounds=3, local_steps=2, batch_size=64, rho=10.0, zeta=10.0, seed=0)
    for name, comm in (
        ("MPI (RDMA)", MPISimCommunicator(num_processes=8)),
        ("gRPC (TCP)", GRPCSimCommunicator(rng=np.random.default_rng(0))),
    ):
        runner = build_federation(config, model_fn, clients, test_data, communicator=comm)
        history = runner.run()
        comm_s = sum(r.comm_seconds for r in history.rounds)
        print(
            f"{name:12s} accuracy={history.final_accuracy:.3f}  "
            f"simulated comm time={comm_s:.3f}s  bytes={history.total_comm_bytes()/1e6:.1f} MB"
        )


if __name__ == "__main__":
    figure3()
    figure4()
    heterogeneity()
    end_to_end_with_simulated_transports()
