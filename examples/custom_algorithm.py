"""Plug-and-play extension: implement and register a custom FL algorithm.

Section II-A of the paper: "Additional user-defined FL algorithms can be
implemented by inheriting our Python class BaseServer and implementing the
virtual function update()" (and likewise for BaseClient).  This example adds
**FedProx** (Li et al., 2020) — FedAvg with a proximal term pulling the local
model towards the global one — registers it under the name ``fedprox``, and
compares it against the built-in algorithms on a label-skewed (non-IID)
partition where the proximal term matters.

Run:  python examples/custom_algorithm.py
"""

from typing import Dict, Mapping

import numpy as np

from repro.core import FLConfig, MLP, build_federation, register_algorithm
from repro.core.base import GLOBAL_KEY, PRIMAL_KEY
from repro.core.fedavg import FedAvgClient, FedAvgServer
from repro.data import dirichlet_partition, synthetic_mnist


class FedProxClient(FedAvgClient):
    """FedAvg client with a proximal penalty (mu/2)||z - w||^2 on the local loss."""

    mu = 0.1

    def update(self, global_payload: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        cfg = self.config
        w = np.asarray(global_payload[GLOBAL_KEY])
        z = np.array(w, copy=True)
        velocity = np.zeros_like(z)
        for _ in range(cfg.local_steps):
            for batch_x, batch_y in self.loader:
                grad = self.batch_gradient(z, batch_x, batch_y) + self.mu * (z - w)
                grad = self.clip_gradient(grad)
                if cfg.momentum:
                    velocity = cfg.momentum * velocity + grad
                    step = velocity
                else:
                    step = grad
                z -= cfg.lr * step
        return {PRIMAL_KEY: z}


class FedProxServer(FedAvgServer):
    """Aggregation is unchanged from FedAvg — only the client objective differs."""


def main() -> None:
    register_algorithm("fedprox", FedProxServer, FedProxClient)

    train, test = synthetic_mnist(train_size=800, test_size=200, seed=0)
    # A strongly non-IID split (Dirichlet alpha=0.2) across 6 clients.
    clients = dirichlet_partition(train, num_clients=6, alpha=0.2, rng=np.random.default_rng(0))

    def model_fn():
        return MLP(28 * 28, 10, hidden_sizes=(64,), rng=np.random.default_rng(11))

    print("Non-IID synthetic MNIST, 6 clients (Dirichlet alpha=0.2)\n")
    for algorithm in ("fedavg", "fedprox", "iiadmm"):
        config = FLConfig(
            algorithm=algorithm,
            num_rounds=8,
            local_steps=3,
            batch_size=64,
            lr=0.03,
            rho=10.0,
            zeta=10.0,
            seed=0,
        )
        history = build_federation(config, model_fn, clients, test).run()
        print(f"{algorithm:8s} final accuracy = {history.final_accuracy:.3f}")


if __name__ == "__main__":
    main()
