"""Hierarchical federation in one page: 100,000 clients behind 16 edges.

A flat server aggregates every client directly, so its fan-in — packets per
round, decode work, bytes — grows with the population.  ``repro.hier``
shards the population behind edge aggregators: each edge runs its shard's
client loop and folds the uploads into one *exact* shard summary
(``repro.core.partial.ExactPartial``), and the root combines the 16
summaries — O(edges) root traffic, and with identity per-hop codecs the
result is **bit-for-bit** the flat run.  Per-edge ``ClientStateStore``s
bound live memory, so the 100k population never materialises at once.

Run:  PYTHONPATH=src python examples/hier_quickstart.py
"""

import time

import numpy as np

from repro.comm import TCPLinkModel
from repro.core import FLConfig
from repro.core.models import MLP
from repro.data import TensorDataset
from repro.harness.reporting import format_history
from repro.hier import RootFedBuff, build_hier_async_federation, build_hier_federation

POPULATION = 100_000
EDGES = 16
LIVE_CAP = 8


def make_datasets():
    """Per-client shards over shared storage (cross-device clients hold
    little data; 100k tiny tensors would only slow the demo down)."""
    rng = np.random.default_rng(7)
    shared = TensorDataset(rng.standard_normal((4, 16)), rng.integers(0, 4, 4))
    return [shared] * POPULATION


def model_fn():
    return MLP(16, 4, hidden_sizes=(8,), rng=np.random.default_rng(42))


def main() -> None:
    datasets = make_datasets()

    # ---- 1. 100k clients, 16 edges, bounded memory -----------------------
    # Event-driven: each edge is an actor on its own virtual clock, samples
    # a small cohort of its 6,250-client shard per round, and sends one
    # summary packet up a TCP-modelled link.  At most EDGES x LIVE_CAP
    # clients are ever live.
    config = FLConfig(
        algorithm="fedavg", num_rounds=2, local_steps=1, batch_size=4,
        lr=0.05, seed=0, topology=f"edges:{EDGES}",
    )
    start = time.perf_counter()
    runner = build_hier_async_federation(
        config, model_fn, datasets,
        live_cap=LIVE_CAP, edge_fraction=0.001,  # ~6 sampled clients/edge round
        strategy=RootFedBuff(EDGES), edge_round_based=True,
        client_link=TCPLinkModel(), root_link=TCPLinkModel(),
    )
    history = runner.run(2)
    live = sum(edge._store.live_count for edge in runner.edges)
    print(f"100k clients / {EDGES} edges: {len(history)} rounds "
          f"in {time.perf_counter() - start:.1f}s real time")
    print(f"  live clients        : {live} (bound {EDGES} x {LIVE_CAP} = {EDGES * LIVE_CAP})")
    print(f"  root packets/round  : {EDGES} summaries (vs {POPULATION} flat)")

    # ---- 2. the per-tier byte report -------------------------------------
    # c2e_MB is the client->edge tier (scales with sampled clients), e2r_MB
    # the edge->root tier (scales with EDGES — the fan-in win).
    print("\n" + format_history(history, title="per-tier communication:"))

    # ---- 3. exactness: a sharded run is bitwise the flat aggregation -----
    # Identity per-hop codecs cannot change a bit: the edges fold exact
    # partial sums and the root merges them (see repro.core.partial).
    from repro.core import build_federation

    small = [datasets[0]] * 48
    cfg = FLConfig(algorithm="iiadmm", num_rounds=2, local_steps=2, batch_size=4,
                   rho=10.0, zeta=10.0, seed=0)
    flat = build_federation(cfg, model_fn, small)
    flat.run()
    hier = build_hier_federation(cfg, model_fn, small, topology="edges:4")
    hier.run()
    exact = np.array_equal(flat.server.global_params, hier.server.global_params)
    print(f"\nhierarchical == flat, bit for bit: {exact}")


if __name__ == "__main__":
    main()
