"""Wire codecs in one page: shrink federated communication with FLConfig(codec=...).

Every model exchange in this repo travels as a typed ``UpdatePacket`` whose
measured, post-codec byte count drives all communication accounting and
simulated link time.  ``FLConfig.codec`` selects the stack:

* ``"identity"``            — bit-for-bit the uncompressed behaviour (default)
* ``"fp16"``                — half-precision wire format
* ``"int8"``                — per-tensor symmetric quantization (~8x at float64)
* ``"delta|int8"``          — quantize the *change* against the dispatched
                              global model (what a client actually learned)
* ``"delta|int8|topk:0.1"`` — additionally keep only the 10% largest entries

DP note: clipping/noising happens inside the client update, *before* the
codec — compression is post-processing and the privacy guarantee survives.

Run:  PYTHONPATH=src python examples/codec_quickstart.py
"""

import numpy as np

from repro.core import FLConfig, build_federation, build_model
from repro.data import load_dataset

CODECS = ("identity", "fp16", "int8", "delta|int8", "delta|int8|topk:0.1")


def main() -> None:
    clients, test, spec = load_dataset("mnist", num_clients=4, train_size=600, test_size=200, seed=0)

    def model_fn():
        return build_model("mlp", spec.image_shape, spec.num_classes, rng=np.random.default_rng(11))

    print("IIADMM on synthetic MNIST, 6 rounds — on-wire bytes by codec stack\n")
    print(f"{'codec':24s} {'final acc':>9s} {'MB total':>9s} {'reduction':>9s}")
    baseline = None
    for codec in CODECS:
        config = FLConfig(
            algorithm="iiadmm", num_rounds=6, local_steps=2, batch_size=64,
            rho=10.0, zeta=10.0, seed=0, codec=codec,
        )
        with build_federation(config, model_fn, clients, test) as runner:
            history = runner.run()
        total = history.total_comm_bytes()
        baseline = baseline or total
        print(
            f"{codec:24s} {history.final_accuracy:9.3f} {total / 1e6:9.2f} "
            f"{baseline / total:8.1f}x"
        )


if __name__ == "__main__":
    main()
