"""Quickstart: privacy-preserving federated learning in ~30 lines.

Trains the paper's three FL algorithms (FedAvg, ICEADMM, IIADMM) on a
synthetic MNIST-like dataset split across 4 clients, with and without
differential privacy, and prints the resulting test accuracy.

Run:  python examples/quickstart.py
"""

import math

import numpy as np

from repro.core import FLConfig, MLP, build_federation
from repro.data import load_dataset


def main() -> None:
    # 1. Load a dataset already partitioned across 4 clients (Section II-A.5).
    clients, test_data, spec = load_dataset("mnist", num_clients=4, train_size=800, test_size=200, seed=0)
    print(f"dataset={spec.name}  clients={len(clients)}  classes={spec.num_classes}")

    # 2. Define the model every client trains (any repro.nn.Module works).
    def model_fn():
        return MLP(28 * 28, spec.num_classes, hidden_sizes=(64,), rng=np.random.default_rng(42))

    # 3. Run each algorithm, non-private (eps=inf) and private (eps=5).
    for algorithm in ("fedavg", "iceadmm", "iiadmm"):
        for epsilon in (math.inf, 5.0):
            config = FLConfig(
                algorithm=algorithm,
                num_rounds=8,
                local_steps=3,
                batch_size=64,
                lr=0.03,
                rho=10.0,
                zeta=10.0,
                seed=0,
            ).with_privacy(epsilon)
            runner = build_federation(config, model_fn, clients, test_data)
            history = runner.run()
            eps_label = "inf" if math.isinf(epsilon) else f"{epsilon:g}"
            print(
                f"{algorithm:8s} eps={eps_label:>4s}  final accuracy={history.final_accuracy:.3f}  "
                f"uplink+downlink={history.total_comm_bytes() / 1e6:.1f} MB"
            )


if __name__ == "__main__":
    main()
