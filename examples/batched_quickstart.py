"""Batched multi-client execution in one page: stacked GEMMs for 10k clients.

At cross-device scale the local-update hot path is thousands of *tiny*
per-client optimizer steps — Python/BLAS call overhead swamps the
arithmetic.  ``FLConfig.client_batch=B`` stacks B same-shaped clients' flat
parameter vectors into one ``(B, dim)`` matrix and runs the whole cohort's
forward/backward/update as batched GEMM/ufunc calls (``repro.core.batched``),
**bitwise identical** to the per-client loop at float64: same histories, same
client RNG streams, same ADMM duals — checkpoints and fallback stay
interchangeable mid-run.  Clients that don't fit a kernel (CNN models, DP,
lossy wire) transparently fall back per client.

Run:  PYTHONPATH=src python examples/batched_quickstart.py
"""

import time
from dataclasses import replace

import numpy as np

from repro.core import FLConfig
from repro.core.models import MLP
from repro.data import TensorDataset
from repro.harness.reporting import format_history
from repro.scale import build_virtual_federation

POPULATION = 10_000
LIVE_CAP = 1024  # cohorts form within a wave: keep it >= client_batch


def make_datasets():
    """Tiny per-client shards (cross-device clients hold little data)."""
    datasets = []
    for cid in range(POPULATION):
        rng = np.random.default_rng(1_000 + cid)
        x = rng.standard_normal((4, 16))
        y = rng.integers(0, 4, size=4)
        datasets.append(TensorDataset(x, y))
    return datasets


def model_fn():
    return MLP(16, 4, hidden_sizes=(8,), rng=np.random.default_rng(42))


def run_once(config):
    runner = build_virtual_federation(config, model_fn, make_datasets(), live_cap=LIVE_CAP)
    start = time.perf_counter()
    runner.run(1)
    elapsed = time.perf_counter() - start
    sps = runner.client_steps / runner.phase_seconds["local_update"]
    return runner, elapsed, sps


def main() -> None:
    base = FLConfig(algorithm="fedavg", num_rounds=1, local_steps=1, batch_size=4, seed=0)

    print(f"{POPULATION} tiny-MLP clients, one FedAvg round each:\n")
    results = {}
    for client_batch in (1, 32, 256):
        runner, elapsed, sps = run_once(replace(base, client_batch=client_batch))
        results[client_batch] = (runner, sps)
        print(f"  client_batch={client_batch:>3}: {elapsed:5.1f}s round, "
              f"{sps:>9.0f} client-steps/sec")
    speedup = results[256][1] / results[1][1]
    print(f"\nB=256 vs per-client: {speedup:.1f}x client-steps/sec on the "
          "local-update hot path")

    # Equivalence is the contract, not a tolerance: at float64 the batched
    # run's global parameters are bit-for-bit the per-client run's.
    identical = np.array_equal(
        results[1][0].server.global_params, results[256][0].server.global_params
    )
    print(f"global params bitwise identical across paths: {identical}")

    # The steps/s column of the run summary surfaces the same throughput.
    print("\n" + format_history(results[256][0].history, title="client_batch=256 run"))


if __name__ == "__main__":
    main()
