"""Process-based multi-core execution in one page: real parallelism per round.

``FLConfig.execution_backend="process"`` runs each round's local updates in
spawn-context **worker processes** instead of GIL-bound threads: every worker
owns one contiguous client shard, the round's global parameter vector is
broadcast once through a read-only shared-memory arena, and uploads come back
as zero-copy shared-memory views the parent folds through exact partial sums
(``repro.mp``).  Because the grouping is invisible to the arithmetic, a
process run is **bitwise identical** to the serial run for FedAvg / ICEADMM /
IIADMM at float64 — same histories, same global vector, same ADMM duals.

Everything shipped to a worker must pickle — use module-level factories such
as :class:`repro.core.models.SeededModelFn` instead of lambdas for
store-backed populations.

Run:  PYTHONPATH=src python examples/multicore_quickstart.py

The ``__main__`` guard below is required: spawn-context children re-import
this module, and an unguarded body would recursively launch federations.
"""

import os
import time
from dataclasses import replace

import numpy as np

from repro.core import FLConfig, build_federation
from repro.core.models import MLP
from repro.data import TensorDataset

NUM_CLIENTS = 8
WORKERS = 4


def make_datasets():
    datasets = []
    for cid in range(NUM_CLIENTS):
        rng = np.random.default_rng(1_000 + cid)
        x = rng.standard_normal((64, 32))
        y = rng.integers(0, 4, size=64)
        datasets.append(TensorDataset(x, y))
    return datasets


def model_fn():
    return MLP(32, 4, hidden_sizes=(64, 32), rng=np.random.default_rng(42))


def run_once(config):
    runner = build_federation(config, model_fn, make_datasets())
    start = time.perf_counter()
    history = runner.run()
    elapsed = time.perf_counter() - start
    runner.close()  # joins the worker processes, unlinks the shm arenas
    return history, config.num_rounds / elapsed


def main():
    config = FLConfig(
        algorithm="iiadmm",
        num_rounds=4,
        local_steps=8,
        batch_size=16,
        lr=0.05,
        seed=0,
        execution_backend="serial",
    )

    serial_history, serial_rps = run_once(config)
    process_history, process_rps = run_once(
        replace(config, execution_backend="process", parallel_clients=WORKERS)
    )

    print(f"host cores:            {os.cpu_count()}")
    print(f"serial backend:        {serial_rps:.3f} rounds/sec")
    print(f"process backend (x{WORKERS}): {process_rps:.3f} rounds/sec "
          f"({process_rps / serial_rps:.2f}x)")
    if (os.cpu_count() or 1) < WORKERS:
        print(f"(fewer than {WORKERS} cores: spawn/IPC overhead without "
              f"parallel speedup is expected)")

    # The parallelism is invisible to the arithmetic: bitwise identical runs.
    identical = all(
        a.test_accuracy == b.test_accuracy and a.test_loss == b.test_loss
        for a, b in zip(serial_history.rounds, process_history.rounds)
    )
    print(f"histories bitwise identical: {identical}")
    assert identical


if __name__ == "__main__":
    main()
