"""Privacy/utility trade-off on a non-IID FEMNIST-like federation (Figure 2 style).

The FEMNIST workload is the paper's hardest setting: many clients (203 in the
paper, a scaled-down 16 here), each holding a small, label-skewed shard written
by one "writer".  This example sweeps the privacy budget for IIADMM and FedAvg
and prints the accuracy trade-off curve plus the cumulative privacy budget
consumed per client (sequential composition).

Run:  python examples/dp_tradeoff_femnist.py
"""

import math

import numpy as np

from repro.core import FLConfig, MLP, build_federation
from repro.data import load_dataset, partition_sizes


def main() -> None:
    clients, test_data, spec = load_dataset("femnist", num_clients=16, train_size=1600, seed=1)
    sizes = partition_sizes(clients)
    print(
        f"FEMNIST-like federation: {len(clients)} writers, "
        f"{sizes.sum()} samples (min {sizes.min()}, max {sizes.max()} per writer), {spec.num_classes} classes"
    )

    def model_fn():
        return MLP(28 * 28, spec.num_classes, hidden_sizes=(64,), rng=np.random.default_rng(3))

    epsilons = (3.0, 5.0, 10.0, math.inf)
    print(f"\n{'algorithm':10s} " + "  ".join(f"eps={e:g}" if math.isfinite(e) else "eps=inf" for e in epsilons))
    for algorithm in ("fedavg", "iiadmm"):
        accuracies = []
        budget_spent = None
        for epsilon in epsilons:
            config = FLConfig(
                algorithm=algorithm,
                num_rounds=6,
                local_steps=2,
                batch_size=32,
                lr=0.03,
                rho=10.0,
                zeta=10.0,
                seed=1,
            ).with_privacy(epsilon)
            runner = build_federation(config, model_fn, clients, test_data)
            history = runner.run()
            accuracies.append(history.final_accuracy)
            if math.isfinite(epsilon):
                budget_spent = runner.accountant.epsilon_spent(0)
        row = "  ".join(f"{a:7.3f}" for a in accuracies)
        print(f"{algorithm:10s} {row}   (per-client eps spent over run at last finite eps: {budget_spent:.0f})")

    print("\nExpected shape: accuracy improves as eps grows (the Figure 2 privacy/utility trade-off)")


if __name__ == "__main__":
    main()
